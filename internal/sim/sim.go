// Package sim is a deterministic discrete-event simulator for sensor
// networks. It provides virtual time, a message-delivery event queue, and
// an actor abstraction for node protocols (heartbeats, failure detection,
// leader election, placement notification) built in internal/protocol.
//
// The round-based algorithms in internal/core answer "where and how many
// sensors"; this engine answers the systems questions the paper's §3.2
// raises about how nodes actually learn things: periodic meta-information
// exchange with period Tc, failure detection by missed heartbeats, and
// the absence of any synchronization requirement.
//
// The hot path is allocation-free: events live in a flat 4-ary min-heap
// (no container/heap interface boxing), callback Contexts come from an
// engine-local free list, and instrumentation is coalesced (see
// flushObs). The engine is single-goroutine by contract — determinism
// comes from the (time, seq) total order on events, never from locks.
package sim

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"decor/internal/obs"
	"decor/internal/rng"
)

// Time is virtual simulation time in seconds.
type Time float64

// Message is an application payload exchanged between actors.
type Message struct {
	From, To int // actor IDs; To < 0 is invalid
	Kind     string
	Payload  any
}

// Actor is a protocol endpoint attached to the engine.
type Actor interface {
	// OnStart runs when the actor is registered; schedule initial timers
	// here.
	OnStart(ctx *Context)
	// OnMessage handles a delivered message.
	OnMessage(ctx *Context, msg Message)
	// OnTimer handles an expired timer with its registration tag.
	OnTimer(ctx *Context, tag string)
}

// Context gives an actor access to the engine during a callback. It is
// only valid for the duration of that callback: the engine recycles
// Contexts through a free list, so a retained pointer may later speak
// for a different actor. Actors that need the engine elsewhere should
// keep the values they read (ID, Now), not the Context.
type Context struct {
	eng *Engine
	id  int
}

// ID returns the actor's ID.
func (c *Context) ID() int { return c.id }

// Now returns the current virtual time.
func (c *Context) Now() Time { return c.eng.now }

// Send enqueues a message for delivery after the engine's latency. Sends
// to dead or unknown actors are silently dropped at delivery time, like
// radio messages to a failed node. Each send counts toward the engine's
// message statistics.
func (c *Context) Send(to int, kind string, payload any) {
	e := c.eng
	e.stats.Sent++
	e.stats.SentBy[c.id]++
	msg := Message{From: c.id, To: to, Kind: kind, Payload: payload}
	jitter := Time(0)
	if e.faults != nil {
		if jitter = e.faults.sendDelay(e.now); jitter > 0 {
			e.stats.Delayed++
		}
		if dupJitter, dup := e.faults.duplicate(e.now); dup {
			e.stats.Duplicated++
			if pp, ok := payload.(Poolable); ok {
				pp.Retain() // the duplicate delivery holds its own reference
			}
			e.schedule(event{at: e.now + e.latency + dupJitter, kind: evMessage, msg: msg})
		}
	}
	e.schedule(event{at: e.now + e.latency + jitter, kind: evMessage, msg: msg})
}

// Poolable is implemented by pooled message payloads. The sender hands
// the payload to Send holding one reference per scheduled delivery (Send
// itself adds one for each duplicate the fault plan injects via Retain);
// the engine calls Release exactly once when a delivery resolves —
// delivered, dropped at a dead actor, lost, or severed by a partition —
// and the payload returns itself to its pool when the count hits zero.
// Receivers must copy what they need during OnMessage and never retain
// the payload: after release the buffer is recycled for a future send
// (internal/protocol's leak-detecting pool tests enforce this contract).
type Poolable interface {
	Retain()
	Release()
}

// releasePayload drops the engine's delivery reference on pooled payloads.
func (e *Engine) releasePayload(p any) {
	if pp, ok := p.(Poolable); ok {
		pp.Release()
	}
}

// SetTimer schedules OnTimer(tag) after d. Timers are not cancellable;
// actors ignore stale tags instead (simpler and sufficient for heartbeat
// protocols).
func (c *Context) SetTimer(d Time, tag string) {
	if d < 0 {
		panic("sim: negative timer duration")
	}
	c.eng.schedule(event{at: c.eng.now + d, kind: evTimer, msg: Message{To: c.id, Kind: tag}})
}

// Engine runs the event loop.
type Engine struct {
	now     Time
	latency Time
	actors  map[int]Actor
	dead    map[int]bool
	queue   eventQueue
	seq     int
	nMsg    int // queued evMessage events: PendingMessages in O(1)
	events  int // cumulative processed events across all Runs
	running bool
	ctxFree []*Context // free list of callback contexts (see Context)
	stats   Stats
	ob      engineObs
	flushed obsFlushed
	trace   func(Time, string)
	// traceLine is the allocation-free trace hook: full formatted lines
	// ("%.9f <event>\n") appended into traceBuf, which is reused across
	// events. See SetTraceLine.
	traceLine func([]byte)
	traceBuf  []byte
	flight    *obs.FlightShard
	obsCtx    context.Context

	lossRate float64
	lossRNG  *rng.RNG
	faults   *faultState
}

// engineObs caches the engine's live instruments so the event loop never
// pays a registry lookup.
type engineObs struct {
	events, sent, delivered, dropped, lost, timers *obs.Counter
	delayed, duplicated, partitionDropped          *obs.Counter
	crashes, restarts                              *obs.Counter
	queueDepth                                     *obs.Gauge
}

func bindEngineObs(r *obs.Registry) engineObs {
	return engineObs{
		events:           r.Counter(obs.SimEvents),
		sent:             r.Counter(obs.SimSent),
		delivered:        r.Counter(obs.SimDelivered),
		dropped:          r.Counter(obs.SimDropped),
		lost:             r.Counter(obs.SimLost),
		timers:           r.Counter(obs.SimTimers),
		delayed:          r.Counter(obs.SimDelayed),
		duplicated:       r.Counter(obs.SimDuplicated),
		partitionDropped: r.Counter(obs.SimPartitionDropped),
		crashes:          r.Counter(obs.SimCrashes),
		restarts:         r.Counter(obs.SimRestarts),
		queueDepth:       r.Gauge(obs.SimQueueDepth),
	}
}

// obsFlushed records how much of each Stats field has already been
// pushed to the obs registry, so flushObs can publish deltas instead of
// paying an atomic add per event on the hot path.
type obsFlushed struct {
	events, sent, delivered, dropped, lost, timers int
	delayed, duplicated, partitionDropped          int
	crashes, restarts                              int
}

// obsFlushEvery is the in-Run coalescing interval: the registry lags the
// engine by at most this many events mid-run and is exact whenever Run
// returns (and before it starts), so exported snapshots — the -metrics
// dumps all binaries take at exit — are semantically unchanged.
const obsFlushEvery = 4096

// flushObs publishes the counter deltas accumulated since the previous
// flush and snaps the queue-depth gauge to the live queue length.
func (e *Engine) flushObs() {
	s, f := &e.stats, &e.flushed
	add := func(c *obs.Counter, cur int, prev *int) {
		if d := cur - *prev; d != 0 {
			c.Add(int64(d))
			*prev = cur
		}
	}
	add(e.ob.events, e.events, &f.events)
	add(e.ob.sent, s.Sent, &f.sent)
	add(e.ob.delivered, s.Delivered, &f.delivered)
	add(e.ob.dropped, s.Dropped, &f.dropped)
	add(e.ob.lost, s.Lost, &f.lost)
	add(e.ob.timers, s.Timers, &f.timers)
	add(e.ob.delayed, s.Delayed, &f.delayed)
	add(e.ob.duplicated, s.Duplicated, &f.duplicated)
	add(e.ob.partitionDropped, s.PartitionDropped, &f.partitionDropped)
	add(e.ob.crashes, s.Crashes, &f.crashes)
	add(e.ob.restarts, s.Restarts, &f.restarts)
	e.ob.queueDepth.Set(float64(e.queue.Len()))
}

// Stats aggregates engine-level counters. Every message send resolves to
// exactly one of Delivered, Dropped, Lost, or PartitionDropped, so at
// quiescence Sent + Duplicated equals their sum — the accounting
// invariant internal/sim/invariant checks.
type Stats struct {
	Sent      int // messages sent (incl. dropped at delivery)
	Delivered int
	Dropped   int // sends to dead/unknown actors
	Lost      int // messages lost to simulated radio loss (uniform + burst)
	Timers    int
	SentBy    map[int]int

	// Chaos counters (zero unless a FaultPlan is installed).
	Delayed          int // messages given extra delay jitter
	Duplicated       int // extra deliveries scheduled by duplication
	PartitionDropped int // messages severed by an active partition
	Crashes          int
	Restarts         int
}

// NewEngine creates an engine with the given one-hop delivery latency.
func NewEngine(latency Time) *Engine {
	if latency < 0 {
		panic("sim: negative latency")
	}
	return &Engine{
		latency: latency,
		actors:  map[int]Actor{},
		dead:    map[int]bool{},
		stats:   Stats{SentBy: map[int]int{}},
		ob:      bindEngineObs(obs.Default()),
	}
}

// SetTrace installs a trace hook invoked with every processed event.
func (e *Engine) SetTrace(fn func(Time, string)) { e.trace = fn }

// SetTraceLine installs the allocation-free trace hook: fn receives each
// event as one fully formatted line — `%.9f <event>\n`, byte-identical
// to composing SetTrace's (time, string) pair with fmt — in a buffer the
// engine REUSES for the next event. Hash it or copy it inside fn; never
// retain it. Both hooks may be installed; each event fires both.
func (e *Engine) SetTraceLine(fn func(line []byte)) { e.traceLine = fn }

// tracing reports whether any trace hook is installed.
func (e *Engine) tracing() bool { return e.trace != nil || e.traceLine != nil }

// lineHeader begins a trace line in the reusable buffer: the event time
// formatted exactly as fmt's %.9f plus the separating space.
func (e *Engine) lineHeader() []byte {
	b := e.traceBuf[:0]
	b = strconv.AppendFloat(b, float64(e.now), 'f', 9, 64)
	return append(b, ' ')
}

// traceMsg emits a "<verb> <kind> <from>-><to>" trace line (deliver, cut,
// burst-lose) through whichever hooks are installed.
func (e *Engine) traceMsg(verb, kind string, from, to int) {
	if e.traceLine != nil {
		b := e.lineHeader()
		b = append(b, verb...)
		b = append(b, ' ')
		b = append(b, kind...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(from), 10)
		b = append(b, '-', '>')
		b = strconv.AppendInt(b, int64(to), 10)
		b = append(b, '\n')
		e.traceBuf = b
		e.traceLine(b)
	}
	if e.trace != nil {
		e.trace(e.now, fmt.Sprintf("%s %s %d->%d", verb, kind, from, to))
	}
}

// traceAt emits a "<verb> @<id>" trace line (crash, restart).
func (e *Engine) traceAt(verb string, id int) {
	if e.traceLine != nil {
		b := e.lineHeader()
		b = append(b, verb...)
		b = append(b, ' ', '@')
		b = strconv.AppendInt(b, int64(id), 10)
		b = append(b, '\n')
		e.traceBuf = b
		e.traceLine(b)
	}
	if e.trace != nil {
		e.trace(e.now, fmt.Sprintf("%s @%d", verb, id))
	}
}

// traceTimer emits a "timer <kind> @<id>" trace line.
func (e *Engine) traceTimer(kind string, id int) {
	if e.traceLine != nil {
		b := e.lineHeader()
		b = append(b, "timer "...)
		b = append(b, kind...)
		b = append(b, ' ', '@')
		b = strconv.AppendInt(b, int64(id), 10)
		b = append(b, '\n')
		e.traceBuf = b
		e.traceLine(b)
	}
	if e.trace != nil {
		e.trace(e.now, fmt.Sprintf("timer %s @%d", kind, id))
	}
}

// SetFlight attaches a flight-recorder shard: every processed event
// (deliveries, drops, losses, crashes, restarts, timers) is recorded as
// a structured FlightEvent at its virtual time. The shard's ring bounds
// memory; nil detaches. With no shard attached the event loop pays one
// nil check per event — the disabled path the tracing-overhead gate in
// scripts/benchstat.sh protects.
func (e *Engine) SetFlight(s *obs.FlightShard) { e.flight = s }

// SetObsContext hands the engine a context that may carry an obs trace
// span (obs.StartTrace); each subsequent Run then records itself as a
// child span named "sim.run" with its processed-event count. A nil or
// span-less context keeps Run span-free.
func (e *Engine) SetObsContext(ctx context.Context) { e.obsCtx = ctx }

// SetRegistry redirects this engine's instrumentation (event counters and
// queue-depth gauge) to r instead of the process-wide obs.Default().
// Call it before registering actors: already-flushed deltas stay on the
// previous registry.
func (e *Engine) SetRegistry(r *obs.Registry) {
	if r == nil {
		panic("sim: nil obs registry")
	}
	e.ob = bindEngineObs(r)
}

// SetLossRate makes every message delivery fail independently with
// probability p (deterministically, driven by seed) — the radio packet
// loss the paper's §2.1 mentions ("sensors are also susceptible to
// packet loss and link failures"). Timers are unaffected. p must be in
// [0, 1]; 1 is a total radio blackout, a legitimate chaos setting.
func (e *Engine) SetLossRate(p float64, seed uint64) {
	if p < 0 || p > 1 {
		panic("sim: loss rate must be in [0, 1]")
	}
	e.lossRate = p
	e.lossRNG = rng.New(seed)
}

// Now returns current virtual time.
func (e *Engine) Now() Time { return e.now }

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.SentBy = make(map[int]int, len(e.stats.SentBy))
	for k, v := range e.stats.SentBy {
		s.SentBy[k] = v
	}
	return s
}

// Totals returns the counters WITHOUT the per-sender breakdown (SentBy is
// nil): the allocation-free accessor for periodic checks — the invariant
// watchdog calls it every tick, where Stats()'s map copy would dominate
// the run's allocation profile.
func (e *Engine) Totals() Stats {
	s := e.stats
	s.SentBy = nil
	return s
}

// getCtx takes a callback context from the free list (or allocates the
// pool's first few). Contexts are released right after the callback
// returns, so nesting — an actor registering another actor mid-callback —
// sees distinct contexts while steady-state callbacks allocate nothing.
func (e *Engine) getCtx(id int) *Context {
	if n := len(e.ctxFree); n > 0 {
		c := e.ctxFree[n-1]
		e.ctxFree = e.ctxFree[:n-1]
		c.id = id
		return c
	}
	return &Context{eng: e, id: id}
}

func (e *Engine) putCtx(c *Context) { e.ctxFree = append(e.ctxFree, c) }

// Register attaches an actor under id and invokes OnStart. It panics on
// duplicate registration.
func (e *Engine) Register(id int, a Actor) {
	if _, ok := e.actors[id]; ok {
		panic(fmt.Sprintf("sim: duplicate actor %d", id))
	}
	e.actors[id] = a
	delete(e.dead, id)
	ctx := e.getCtx(id)
	a.OnStart(ctx)
	e.putCtx(ctx)
}

// Kill marks an actor dead at the current time: pending deliveries to it
// are dropped and it receives no further callbacks. The paper's node
// failures map to Kill.
func (e *Engine) Kill(id int) { e.dead[id] = true }

// Restart revives a killed (or crashed) actor: its OnStart runs again at
// the current virtual time, re-arming its timer chains. The actor keeps
// its struct state — recovery from a checkpoint. Restarting an actor
// that was never registered, or is already alive, is a no-op.
func (e *Engine) Restart(id int) {
	a, ok := e.actors[id]
	if !ok || !e.dead[id] {
		return
	}
	delete(e.dead, id)
	ctx := e.getCtx(id)
	a.OnStart(ctx)
	e.putCtx(ctx)
}

// Alive reports whether id is registered and not killed.
func (e *Engine) Alive(id int) bool {
	_, ok := e.actors[id]
	return ok && !e.dead[id]
}

// event kinds
const (
	evMessage = iota
	evTimer
	evCrash   // fault-plan control: mark msg.To dead
	evRestart // fault-plan control: revive msg.To and re-run OnStart
)

type event struct {
	at   Time
	kind int
	seq  int
	msg  Message
}

// lessEv is the engine's total event order: time, then schedule sequence.
// seq is unique, so the order has no ties — any correct heap pops the
// same sequence, which is what keeps the overhauled queue byte-identical
// to the seed's container/heap (TestQueueMatchesReferenceHeap).
func lessEv(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq // FIFO among simultaneous events: determinism
}

// eventQueue is a concrete 4-ary min-heap over a flat []event slice —
// no container/heap interface, so pushes and pops never box events into
// interface values (the seed queue's two allocations per event). The
// slice doubles as the engine-local event pool: popped slots are zeroed
// (so payloads don't pin memory) but the backing array is kept, so a
// steady-state run reuses the same storage for every event. 4-way fanout
// halves the tree depth of the binary heap and keeps sift-down children
// in one or two cache lines.
type eventQueue struct {
	evs []event
}

// Len returns the number of queued events.
func (q *eventQueue) Len() int { return len(q.evs) }

func (q *eventQueue) push(ev event) {
	q.evs = append(q.evs, ev)
	q.siftUp(len(q.evs) - 1)
}

func (q *eventQueue) pop() event {
	evs := q.evs
	top := evs[0]
	n := len(evs) - 1
	evs[0] = evs[n]
	evs[n] = event{} // release the payload reference, keep the slot
	q.evs = evs[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return top
}

func (q *eventQueue) siftUp(i int) {
	evs := q.evs
	ev := evs[i]
	for i > 0 {
		p := (i - 1) / 4
		if !lessEv(&ev, &evs[p]) {
			break
		}
		evs[i] = evs[p]
		i = p
	}
	evs[i] = ev
}

func (q *eventQueue) siftDown(i int) {
	evs := q.evs
	n := len(evs)
	ev := evs[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if lessEv(&evs[c], &evs[min]) {
				min = c
			}
		}
		if !lessEv(&evs[min], &ev) {
			break
		}
		evs[i] = evs[min]
		i = min
	}
	evs[i] = ev
}

// reheap restores the heap property over arbitrary contents in O(n) —
// the 4-ary analogue of heap.Init, used after dropTimers filters the
// queue in place.
func (q *eventQueue) reheap() {
	n := len(q.evs)
	if n < 2 {
		return
	}
	for i := (n - 2) / 4; i >= 0; i-- {
		q.siftDown(i)
	}
}

// dropTimers removes every pending timer event for actor id: a crashed
// node loses its volatile timer state, while messages already in flight
// to it stay in the ether (and drop at delivery if it is still down).
// When the filter drops nothing the heap order is untouched, so the
// O(n) rebuild is skipped; message counters are unaffected either way
// (only evTimer events are removed).
func (e *Engine) dropTimers(id int) {
	evs := e.queue.evs
	kept := evs[:0]
	for i := range evs {
		if evs[i].kind == evTimer && evs[i].msg.To == id {
			continue
		}
		kept = append(kept, evs[i])
	}
	if len(kept) == len(evs) {
		return
	}
	for i := len(kept); i < len(evs); i++ {
		evs[i] = event{} // zero dropped tail slots
	}
	e.queue.evs = kept
	e.queue.reheap()
	if !e.running {
		e.ob.queueDepth.Set(float64(e.queue.Len()))
	}
}

func (e *Engine) schedule(ev event) {
	ev.seq = e.seq
	e.seq++
	if ev.kind == evMessage {
		e.nMsg++
	}
	e.queue.push(ev)
	if !e.running {
		// Cold path — Register/SetFaults before (or between) Runs keep the
		// gauge exact; inside Run it is coalesced through flushObs.
		e.ob.queueDepth.Set(float64(e.queue.Len()))
	}
}

// Run processes events until the queue is empty or virtual time exceeds
// until. It returns the number of events processed.
func (e *Engine) Run(until Time) int {
	processed := 0
	_, runSpan := obs.StartSpanCtx(e.obsCtx, "sim.run")
	e.running = true
	for e.queue.Len() > 0 {
		if e.queue.evs[0].at > until {
			break
		}
		ev := e.queue.pop()
		if ev.kind == evMessage {
			e.nMsg--
		}
		e.events++
		e.now = ev.at
		processed++
		if processed%obsFlushEvery == 0 {
			e.flushObs()
		}
		target := ev.msg.To
		if ev.kind == evCrash {
			e.dead[target] = true
			e.dropTimers(target)
			e.stats.Crashes++
			if e.tracing() {
				e.traceAt("crash", target)
			}
			e.flight.Record(float64(e.now), "crash", target, "")
			continue
		}
		if ev.kind == evRestart {
			if _, ok := e.actors[target]; ok && e.dead[target] {
				e.stats.Restarts++
				if e.tracing() {
					e.traceAt("restart", target)
				}
				e.flight.Record(float64(e.now), "restart", target, "")
				e.Restart(target)
			}
			continue
		}
		actor, ok := e.actors[target]
		if !ok || e.dead[target] {
			if ev.kind == evMessage {
				e.stats.Dropped++
				if e.flight != nil {
					e.flight.RecordMsg(float64(e.now), "drop", target, ev.msg.Kind, ev.msg.From, target, true)
				}
				e.releasePayload(ev.msg.Payload)
			}
			continue
		}
		switch ev.kind {
		case evMessage:
			if e.faults != nil && e.faults.linkCut(e.now, ev.msg.From, target) {
				e.stats.PartitionDropped++
				if e.tracing() {
					e.traceMsg("cut", ev.msg.Kind, ev.msg.From, target)
				}
				if e.flight != nil {
					e.flight.RecordMsg(float64(e.now), "cut", target, ev.msg.Kind, ev.msg.From, target, false)
				}
				e.releasePayload(ev.msg.Payload)
				continue
			}
			if e.lossRate > 0 && e.lossRNG.Bool(e.lossRate) {
				e.stats.Lost++
				if e.flight != nil {
					e.flight.RecordMsg(float64(e.now), "lose", target, ev.msg.Kind, ev.msg.From, target, false)
				}
				e.releasePayload(ev.msg.Payload)
				continue
			}
			if e.faults != nil && e.faults.burstLost(e.now) {
				e.stats.Lost++
				if e.tracing() {
					e.traceMsg("burst-lose", ev.msg.Kind, ev.msg.From, target)
				}
				if e.flight != nil {
					e.flight.RecordMsg(float64(e.now), "burst-lose", target, ev.msg.Kind, ev.msg.From, target, false)
				}
				e.releasePayload(ev.msg.Payload)
				continue
			}
			e.stats.Delivered++
			if e.tracing() {
				e.traceMsg("deliver", ev.msg.Kind, ev.msg.From, target)
			}
			if e.flight != nil {
				e.flight.RecordMsg(float64(e.now), "deliver", target, ev.msg.Kind, ev.msg.From, target, false)
			}
			ctx := e.getCtx(target)
			actor.OnMessage(ctx, ev.msg)
			e.putCtx(ctx)
			e.releasePayload(ev.msg.Payload)
		case evTimer:
			e.stats.Timers++
			if e.tracing() {
				e.traceTimer(ev.msg.Kind, target)
			}
			if e.flight != nil {
				e.flight.Record(float64(e.now), "timer", target, ev.msg.Kind)
			}
			ctx := e.getCtx(target)
			actor.OnTimer(ctx, ev.msg.Kind)
			e.putCtx(ctx)
		}
	}
	e.running = false
	e.flushObs()
	if e.queue.Len() == 0 && until != Inf && e.now < until {
		e.now = until
	}
	if runSpan != nil {
		runSpan.SetAttr(fmt.Sprintf("events=%d", processed))
		runSpan.End()
	}
	return processed
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// PendingMessages returns the number of queued message-delivery events
// (timers and fault-plan control events excluded), maintained as a
// running counter — O(1), no queue scan. It closes the
// message-accounting books mid-run: Sent + Duplicated always equals
// Delivered + Dropped + Lost + PartitionDropped + PendingMessages.
func (e *Engine) PendingMessages() int { return e.nMsg }

// Inf is a convenience for Run(sim.Inf): process everything.
const Inf = Time(math.MaxFloat64)

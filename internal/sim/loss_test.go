package sim_test

import (
	"math"
	"testing"

	"decor/internal/sim"
	"decor/internal/sim/simtest"
)

// flood registers a receiver (id 2) and a sender (id 1) that emits n
// messages at t=0, returning the receiver.
func flood(e *sim.Engine, n int) *simtest.Recorder {
	recv := &simtest.Recorder{}
	e.Register(2, recv)
	e.Register(1, &simtest.Recorder{Hooks: simtest.Hooks{OnStart: func(ctx *sim.Context) {
		for i := 0; i < n; i++ {
			ctx.Send(2, "x", i)
		}
	}}})
	return recv
}

func TestLossRateDropsFraction(t *testing.T) {
	e := simtest.NewLossyEngine(0.01, 0.3, 42)
	recv := flood(e, 5000)
	e.Run(sim.Inf)
	st := e.Stats()
	if st.Sent != 5000 {
		t.Fatalf("sent = %d", st.Sent)
	}
	if st.Lost+st.Delivered != 5000 {
		t.Fatalf("lost %d + delivered %d != 5000", st.Lost, st.Delivered)
	}
	frac := float64(st.Lost) / 5000
	if math.Abs(frac-0.3) > 0.03 {
		t.Errorf("loss fraction = %v, want ~0.3", frac)
	}
	if len(recv.Messages) != st.Delivered {
		t.Errorf("receiver saw %d, engine delivered %d", len(recv.Messages), st.Delivered)
	}
}

func TestLossDeterministic(t *testing.T) {
	run := func() int {
		e := simtest.NewLossyEngine(0, 0.5, 7)
		flood(e, 100)
		e.Run(sim.Inf)
		return e.Stats().Lost
	}
	if run() != run() {
		t.Error("loss pattern not deterministic")
	}
}

func TestLossRateValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.01, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("loss rate %v should panic", bad)
				}
			}()
			sim.NewEngine(0).SetLossRate(bad, 1)
		}()
	}
	// Zero is allowed and means lossless.
	e := simtest.NewLossyEngine(0, 0, 1)
	flood(e, 1)
	e.Run(sim.Inf)
	if e.Stats().Lost != 0 || e.Stats().Delivered != 1 {
		t.Error("zero loss rate dropped messages")
	}
}

// The boundary p = 1.0 is a legal chaos setting: a total radio blackout.
// Every message is lost, none delivered, and timers still fire.
func TestLossRateOneIsTotalBlackout(t *testing.T) {
	e := simtest.NewLossyEngine(0.01, 1.0, 9)
	recv := flood(e, 200)
	e.Run(sim.Inf)
	st := e.Stats()
	if st.Lost != 200 || st.Delivered != 0 {
		t.Errorf("blackout stats: lost %d delivered %d, want 200/0", st.Lost, st.Delivered)
	}
	if len(recv.Messages) != 0 {
		t.Error("receiver heard through a total blackout")
	}
}

func TestTimersUnaffectedByLoss(t *testing.T) {
	e := simtest.NewLossyEngine(0, 0.9, 3)
	a := &simtest.Recorder{Hooks: simtest.Hooks{OnStart: func(ctx *sim.Context) {
		for i := 0; i < 50; i++ {
			ctx.SetTimer(sim.Time(i+1), "t")
		}
	}}}
	e.Register(1, a)
	e.Run(sim.Inf)
	if len(a.Timers) != 50 {
		t.Errorf("timers fired = %d, want 50 (loss must not affect timers)", len(a.Timers))
	}
}

package sim

import (
	"math"
	"testing"
)

func TestLossRateDropsFraction(t *testing.T) {
	e := NewEngine(0.01)
	e.SetLossRate(0.3, 42)
	recv := &echoActor{}
	e.Register(2, recv)
	e.Register(1, &echoActor{onStart: func(ctx *Context) {
		for i := 0; i < 5000; i++ {
			ctx.Send(2, "x", i)
		}
	}})
	e.Run(Inf)
	st := e.Stats()
	if st.Sent != 5000 {
		t.Fatalf("sent = %d", st.Sent)
	}
	if st.Lost+st.Delivered != 5000 {
		t.Fatalf("lost %d + delivered %d != 5000", st.Lost, st.Delivered)
	}
	frac := float64(st.Lost) / 5000
	if math.Abs(frac-0.3) > 0.03 {
		t.Errorf("loss fraction = %v, want ~0.3", frac)
	}
	if len(recv.messages) != st.Delivered {
		t.Errorf("receiver saw %d, engine delivered %d", len(recv.messages), st.Delivered)
	}
}

func TestLossDeterministic(t *testing.T) {
	run := func() int {
		e := NewEngine(0)
		e.SetLossRate(0.5, 7)
		e.Register(2, &echoActor{})
		e.Register(1, &echoActor{onStart: func(ctx *Context) {
			for i := 0; i < 100; i++ {
				ctx.Send(2, "x", nil)
			}
		}})
		e.Run(Inf)
		return e.Stats().Lost
	}
	if run() != run() {
		t.Error("loss pattern not deterministic")
	}
}

func TestLossRateValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.0, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("loss rate %v should panic", bad)
				}
			}()
			NewEngine(0).SetLossRate(bad, 1)
		}()
	}
	// Zero is allowed and means lossless.
	e := NewEngine(0)
	e.SetLossRate(0, 1)
	e.Register(2, &echoActor{})
	e.Register(1, &echoActor{onStart: func(ctx *Context) { ctx.Send(2, "x", nil) }})
	e.Run(Inf)
	if e.Stats().Lost != 0 || e.Stats().Delivered != 1 {
		t.Error("zero loss rate dropped messages")
	}
}

func TestTimersUnaffectedByLoss(t *testing.T) {
	e := NewEngine(0)
	e.SetLossRate(0.9, 3)
	a := &echoActor{onStart: func(ctx *Context) {
		for i := 0; i < 50; i++ {
			ctx.SetTimer(Time(i+1), "t")
		}
	}}
	e.Register(1, a)
	e.Run(Inf)
	if len(a.timers) != 50 {
		t.Errorf("timers fired = %d, want 50 (loss must not affect timers)", len(a.timers))
	}
}

package sim

import (
	"testing"

	"decor/internal/obs"
)

// TestEngineInstrumentation checks the engine's obs wiring: per-event
// counters and the queue-depth gauge, observed through a private registry
// so parallel tests sharing obs.Default() cannot interfere.
func TestEngineInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewEngine(0.5)
	e.SetRegistry(reg)

	e.Register(2, &echoActor{})
	e.Register(1, &echoActor{onStart: func(ctx *Context) {
		ctx.Send(2, "ping", nil)
		ctx.Send(99, "void", nil) // dropped: unknown target
		ctx.SetTimer(1, "tick")
	}})
	if got := reg.Gauge(obs.SimQueueDepth).Value(); got != 3 {
		t.Errorf("queue depth after scheduling = %g, want 3", got)
	}
	e.Run(Inf)

	snap := reg.Snapshot()
	want := map[string]int64{
		obs.SimEvents:    3,
		obs.SimSent:      2,
		obs.SimDelivered: 1,
		obs.SimDropped:   1,
		obs.SimLost:      0,
		obs.SimTimers:    1,
	}
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if got := snap.Gauges[obs.SimQueueDepth]; got != 0 {
		t.Errorf("final queue depth = %g, want 0", got)
	}
}

func TestSetRegistryNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetRegistry(nil) should panic")
		}
	}()
	NewEngine(0).SetRegistry(nil)
}

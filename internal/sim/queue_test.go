package sim

import (
	"container/heap"
	"testing"

	"decor/internal/rng"
)

// refQueue is the seed engine's event queue, verbatim: a binary min-heap
// driven through the container/heap interface, ordered by (at, seq). The
// overhauled 4-ary queue must pop in exactly this order on every
// workload — the (time, seq) key is a total order, so the differential
// tests below assert byte-identical pop sequences, not just sorted ones.
type refQueue []event

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// TestQueueMatchesReferenceHeap races the 4-ary queue against the seed's
// container/heap on randomized interleaved push/pop workloads. Times are
// drawn from a small domain so equal-time runs (the FIFO tie-break the
// protocols depend on) occur constantly.
func TestQueueMatchesReferenceHeap(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		r := rng.New(seed)
		var q eventQueue
		var ref refQueue
		seq := 0
		for op := 0; op < 2000; op++ {
			if r.Bool(0.6) || q.Len() == 0 {
				ev := event{
					at:   Time(r.Intn(50)) / 8, // coarse: many exact ties
					kind: r.Intn(4),
					seq:  seq,
					msg:  Message{From: r.Intn(9), To: r.Intn(9)},
				}
				seq++
				q.push(ev)
				heap.Push(&ref, ev)
			} else {
				got := q.pop()
				want := heap.Pop(&ref).(event)
				if got != want {
					t.Fatalf("seed %d op %d: pop = %+v, reference = %+v", seed, op, got, want)
				}
			}
			if q.Len() != ref.Len() {
				t.Fatalf("seed %d op %d: len %d != reference %d", seed, op, q.Len(), ref.Len())
			}
		}
		for q.Len() > 0 {
			got, want := q.pop(), heap.Pop(&ref).(event)
			if got != want {
				t.Fatalf("seed %d drain: pop = %+v, reference = %+v", seed, got, want)
			}
		}
	}
}

// TestQueueReheapMatchesReference exercises the dropTimers path: filter
// an arbitrary subset out of both queues, rebuild (reheap vs heap.Init),
// and require identical pop order afterwards.
func TestQueueReheapMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		r := rng.New(seed ^ 0xfeed)
		var q eventQueue
		var ref refQueue
		for i := 0; i < 300; i++ {
			ev := event{at: Time(r.Intn(40)) / 4, kind: i % 2, seq: i, msg: Message{To: r.Intn(5)}}
			q.push(ev)
			heap.Push(&ref, ev)
		}
		victim := r.Intn(5)
		filter := func(evs []event) []event {
			kept := evs[:0]
			for _, ev := range evs {
				if ev.kind == evTimer && ev.msg.To == victim {
					continue
				}
				kept = append(kept, ev)
			}
			return kept
		}
		q.evs = filter(q.evs)
		q.reheap()
		ref = filter(ref)
		heap.Init(&ref)
		if q.Len() != ref.Len() {
			t.Fatalf("seed %d: len %d != reference %d", seed, q.Len(), ref.Len())
		}
		for q.Len() > 0 {
			got, want := q.pop(), heap.Pop(&ref).(event)
			if got != want {
				t.Fatalf("seed %d: pop = %+v, reference = %+v", seed, got, want)
			}
		}
	}
}

func TestQueueReheapEmptyAndSingle(t *testing.T) {
	var q eventQueue
	q.reheap() // must not panic on the empty queue
	q.push(event{at: 1, seq: 0})
	q.reheap()
	if got := q.pop(); got.at != 1 {
		t.Errorf("single-element pop = %+v", got)
	}
}

// countQueuedMessages is the pre-overhaul linear scan, kept as the test
// oracle for the O(1) PendingMessages counter.
func countQueuedMessages(e *Engine) int {
	n := 0
	for i := range e.queue.evs {
		if e.queue.evs[i].kind == evMessage {
			n++
		}
	}
	return n
}

// TestPendingMessagesCounter is the regression test for the maintained
// message-event counter: it must match a queue recount at every
// quiescent point of a run that exercises each way a message event can
// enter or leave the queue — delivery, drop-at-delivery, uniform loss,
// partition cuts, duplication, and crash-driven timer filtering (which
// must NOT touch the message counter).
func TestPendingMessagesCounter(t *testing.T) {
	e := NewEngine(1)
	check := func(when string) {
		t.Helper()
		if got, want := e.PendingMessages(), countQueuedMessages(e); got != want {
			t.Fatalf("%s: PendingMessages = %d, recount = %d", when, got, want)
		}
	}

	e.SetLossRate(0.3, 7)
	e.SetFaults(FaultPlan{
		Seed:    7,
		DupProb: 0.5, DelayProb: 0.5, DelayMax: 2, Until: 30,
		Crashes:    []Crash{{Actor: 2, At: 6, RestartAt: 14}},
		Partitions: []Partition{{From: 2, Until: 10, A: []int{1}, B: []int{3}}},
	})
	check("after SetFaults (control events queued)")

	chatty := func(peer int) *echoActor {
		a := &echoActor{}
		a.onStart = func(ctx *Context) { ctx.SetTimer(1, "tick") }
		a.onTimer = func(ctx *Context, _ string) {
			ctx.Send(peer, "m", nil)
			ctx.SetTimer(1, "tick")
		}
		return a
	}
	e.Register(1, chatty(3))
	e.Register(2, chatty(1))
	e.Register(3, chatty(2))
	check("after Register")

	for _, until := range []Time{3, 6.5, 9, 14.5, 20} {
		e.Run(until)
		check("mid-run quiescence")
	}
	e.Kill(1)
	e.Kill(2)
	e.Kill(3)
	e.Run(25)
	check("after killing all actors")
	if e.PendingMessages() != 0 {
		t.Errorf("quiescent PendingMessages = %d, want 0", e.PendingMessages())
	}
	st := e.Stats()
	resolved := st.Delivered + st.Dropped + st.Lost + st.PartitionDropped
	if st.Sent+st.Duplicated != resolved {
		t.Errorf("books don't close: sent %d + dup %d != resolved %d", st.Sent, st.Duplicated, resolved)
	}
}

// TestPendingMessagesSurvivesCrashFilter pins the satellite fix: a crash
// drops the victim's timers from the queue (no full rebuild when nothing
// matches) but leaves in-flight messages — and their counter — intact.
func TestPendingMessagesSurvivesCrashFilter(t *testing.T) {
	e := NewEngine(5)
	victim := &echoActor{onStart: func(ctx *Context) {
		ctx.SetTimer(10, "a")
		ctx.SetTimer(20, "b")
	}}
	e.Register(2, victim)
	e.Register(1, &echoActor{onStart: func(ctx *Context) {
		ctx.Send(2, "inflight", nil)
		ctx.Send(2, "inflight2", nil)
	}})
	e.SetFaults(FaultPlan{Crashes: []Crash{{Actor: 2, At: 1}}})

	before := e.PendingMessages()
	if before != 2 {
		t.Fatalf("PendingMessages before run = %d, want 2", before)
	}
	e.Run(2) // crash fires, timers for 2 dropped, messages still queued
	if got, want := e.PendingMessages(), countQueuedMessages(e); got != want || got != 2 {
		t.Fatalf("after crash: PendingMessages = %d, recount = %d, want 2", got, want)
	}
	e.Run(Inf)
	if e.PendingMessages() != 0 {
		t.Errorf("final PendingMessages = %d", e.PendingMessages())
	}
	st := e.Stats()
	if st.Dropped != 2 || len(victim.timers) != 0 {
		t.Errorf("dropped = %d, victim timers = %v", st.Dropped, victim.timers)
	}
}

// TestDropTimersSkipsRebuildWhenClean covers the no-op filter: crashing
// an actor with no pending timers must leave the queue untouched (same
// backing array, same order) — the path that previously paid a full
// heap.Init regardless.
func TestDropTimersSkipsRebuildWhenClean(t *testing.T) {
	e := NewEngine(1)
	e.Register(1, &echoActor{onStart: func(ctx *Context) {
		ctx.Send(9, "x", nil)
		ctx.Send(9, "y", nil)
	}})
	snapshot := append([]event(nil), e.queue.evs...)
	e.dropTimers(42) // no timers for 42 anywhere
	if len(e.queue.evs) != len(snapshot) {
		t.Fatalf("clean dropTimers changed length: %d != %d", len(e.queue.evs), len(snapshot))
	}
	for i := range snapshot {
		if e.queue.evs[i] != snapshot[i] {
			t.Errorf("slot %d reordered by clean dropTimers", i)
		}
	}
}

// Package simtest holds the small engine-test helpers shared by the sim,
// protocol, and chaos test suites, so lossy-engine setup and the
// recording actor are written once instead of per package.
package simtest

import "decor/internal/sim"

// Recorder is a scriptable actor that records everything it sees. The
// optional hooks run after recording.
type Recorder struct {
	Started  bool
	Messages []sim.Message
	Timers   []string
	Hooks    Hooks
}

// Hooks customizes a Recorder's behaviour.
type Hooks struct {
	OnStart   func(*sim.Context)
	OnMessage func(*sim.Context, sim.Message)
	OnTimer   func(*sim.Context, string)
}

// OnStart implements sim.Actor.
func (a *Recorder) OnStart(ctx *sim.Context) {
	a.Started = true
	if a.Hooks.OnStart != nil {
		a.Hooks.OnStart(ctx)
	}
}

// OnMessage implements sim.Actor.
func (a *Recorder) OnMessage(ctx *sim.Context, m sim.Message) {
	a.Messages = append(a.Messages, m)
	if a.Hooks.OnMessage != nil {
		a.Hooks.OnMessage(ctx, m)
	}
}

// OnTimer implements sim.Actor.
func (a *Recorder) OnTimer(ctx *sim.Context, tag string) {
	a.Timers = append(a.Timers, tag)
	if a.Hooks.OnTimer != nil {
		a.Hooks.OnTimer(ctx, tag)
	}
}

// NewLossyEngine builds an engine with the given one-hop latency and
// uniform loss rate installed under the given seed — the setup previously
// duplicated by the sim and protocol loss tests.
func NewLossyEngine(latency sim.Time, loss float64, seed uint64) *sim.Engine {
	e := sim.NewEngine(latency)
	if loss > 0 {
		e.SetLossRate(loss, seed)
	}
	return e
}

// Package percover decides exact k-coverage of a field by the
// perimeter-coverage method of Huang & Tseng ("The coverage problem in a
// wireless sensor network", WSNA 2003) — reference [8] of the DECOR
// paper. It serves as an independent, analytic verifier for the
// discrepancy-point approximation DECOR builds on: where the point set
// says "k-covered", the perimeter method confirms it exactly (up to
// measure-zero tangencies).
//
// The idea: the coverage level is piecewise constant on the arrangement
// of sensing circles; it only changes when crossing a circle or the
// field boundary. The field is k-covered iff
//
//  1. every point of the field boundary is covered by at least k
//     sensors, and
//  2. for every sensor, every in-field point of its sensing perimeter is
//     covered by at least k sensors other than itself (so the region
//     just outside the perimeter still meets the requirement), and
//  3. if no sensing circle intersects the field at all, the field center
//     is covered by at least k sensors (degenerate single-cell case).
//
// Rather than doing exact interval arithmetic at the (degenerate-prone)
// event angles, the implementation evaluates coverage at the midpoints
// of the angular/linear gaps between events — robust, and each failure
// yields a concrete witness point.
package percover

import (
	"math"

	"decor/internal/coverage"
	"decor/internal/geom"
)

// Result reports a verification outcome.
type Result struct {
	Covered bool
	// Witness is a field point covered by fewer than k sensors when
	// Covered is false.
	Witness geom.Point
	// Checks counts the midpoint evaluations performed (a complexity
	// indicator: O(n · neighbors)).
	Checks int
}

// Verify decides whether every point of m's field is covered by at least
// k sensors, independently of the sample-point set.
func Verify(m *coverage.Map, k int) Result {
	if k <= 0 {
		return Result{Covered: true}
	}
	field := m.Field()
	v := &verifier{m: m, k: k, field: field}

	// (1) Field boundary.
	c := field.Corners()
	for i := range c {
		seg := geom.Segment{A: c[i], B: c[(i+1)%4]}
		if res, ok := v.checkBoundary(seg); !ok {
			return res
		}
	}
	// (2) Sensor perimeters.
	anyEvent := false
	for _, id := range m.SensorIDs() {
		res, hadEvents, ok := v.checkPerimeter(id)
		anyEvent = anyEvent || hadEvents
		if !ok {
			return res
		}
	}
	// (3) Degenerate case: no circle crosses the field interior, so the
	// interior is a single cell; probe its center.
	if !anyEvent {
		center := field.Center()
		if v.coverage(center) < k {
			return Result{Covered: false, Witness: center, Checks: v.checks}
		}
	}
	return Result{Covered: true, Checks: v.checks}
}

type verifier struct {
	m      *coverage.Map
	k      int
	field  geom.Rect
	checks int
}

// coverage counts sensors covering p (closed disks, per-sensor radii).
func (v *verifier) coverage(p geom.Point) int {
	v.checks++
	n := 0
	// Query with the map's largest radius so long-range sensors are not
	// missed, then filter by each sensor's own radius.
	for _, id := range v.m.SensorsInBall(p, v.maxRadius()) {
		pos, _ := v.m.SensorPos(id)
		rs, _ := v.m.SensorRadius(id)
		if pos.Dist2(p) <= rs*rs {
			n++
		}
	}
	return n
}

func (v *verifier) maxRadius() float64 {
	// coverage.Map tracks the largest radius it has seen; expose via
	// a generous default: the default rs or any heterogeneous radius is
	// bounded by MaxSensorRadius.
	return v.m.MaxSensorRadius()
}

// checkBoundary verifies one boundary segment.
func (v *verifier) checkBoundary(seg geom.Segment) (Result, bool) {
	// Events: parameter values t in (0,1) where some sensing circle
	// crosses the segment.
	events := []float64{0, 1}
	dir := seg.B.Sub(seg.A)
	length2 := dir.Norm2()
	for _, id := range v.m.SensorIDs() {
		pos, _ := v.m.SensorPos(id)
		rs, _ := v.m.SensorRadius(id)
		// Solve |A + t·dir − pos|² = rs².
		f := seg.A.Sub(pos)
		a := length2
		b := 2 * f.Dot(dir)
		c := f.Norm2() - rs*rs
		disc := b*b - 4*a*c
		if disc <= 0 || a == 0 {
			continue
		}
		sq := math.Sqrt(disc)
		for _, t := range []float64{(-b - sq) / (2 * a), (-b + sq) / (2 * a)} {
			if t > 0 && t < 1 {
				events = append(events, t)
			}
		}
	}
	sortFloats(events)
	for i := 0; i+1 < len(events); i++ {
		mid := (events[i] + events[i+1]) / 2
		if events[i+1]-events[i] < 1e-12 {
			continue
		}
		p := seg.A.Add(dir.Scale(mid))
		if v.coverage(p) < v.k {
			return Result{Covered: false, Witness: p, Checks: v.checks}, false
		}
	}
	return Result{}, true
}

// checkPerimeter verifies one sensor's in-field perimeter arcs: each
// must be covered by >= k sensors other than itself. hadEvents reports
// whether the circle produced any arrangement event inside the field.
func (v *verifier) checkPerimeter(id int) (Result, bool, bool) {
	ci, _ := v.m.SensorPos(id)
	ri, _ := v.m.SensorRadius(id)
	var events []float64
	// Events from other sensors' circles.
	for _, oid := range v.m.SensorsInBall(ci, ri+v.maxRadius()) {
		if oid == id {
			continue
		}
		cj, _ := v.m.SensorPos(oid)
		rj, _ := v.m.SensorRadius(oid)
		d := ci.Dist(cj)
		if d >= ri+rj || d == 0 {
			continue // disjoint or concentric: no crossing
		}
		if d+ri <= rj || d+rj <= ri {
			continue // one circle nested in the other disk: no crossing
		}
		theta := math.Atan2(cj.Y-ci.Y, cj.X-ci.X)
		cosPhi := (d*d + ri*ri - rj*rj) / (2 * d * ri)
		if cosPhi < -1 || cosPhi > 1 {
			continue
		}
		phi := math.Acos(cosPhi)
		events = append(events, normAngle(theta-phi), normAngle(theta+phi))
	}
	// Events from field-boundary crossings.
	for _, t := range circleRectCrossings(ci, ri, v.field) {
		events = append(events, t)
	}
	hadEvents := len(events) > 0
	if !hadEvents {
		// The circle crosses nothing: either entirely inside the field
		// (probe one point) or entirely outside (exempt).
		p := geom.Point{X: ci.X + ri, Y: ci.Y}
		if v.field.Contains(p) && v.strictlyInField(p) {
			if v.coverageExcluding(p, id) < v.k {
				return Result{Covered: false, Witness: witnessOutside(ci, ri, 0)}, false, false
			}
		}
		return Result{}, false, true
	}
	events = append(events, 0, 2*math.Pi)
	sortFloats(events)
	for i := 0; i+1 < len(events); i++ {
		if events[i+1]-events[i] < 1e-12 {
			continue
		}
		mid := (events[i] + events[i+1]) / 2
		p := geom.Point{X: ci.X + ri*math.Cos(mid), Y: ci.Y + ri*math.Sin(mid)}
		if !v.strictlyInField(p) {
			continue // out-of-field arcs are exempt
		}
		if v.coverageExcluding(p, id) < v.k {
			return Result{Covered: false, Witness: witnessOutside(ci, ri, mid), Checks: v.checks}, true, false
		}
	}
	return Result{}, true, true
}

// strictlyInField keeps midpoints a hair away from the boundary so the
// witness just outside the perimeter stays a field point.
func (v *verifier) strictlyInField(p geom.Point) bool {
	const eps = 1e-9
	return p.X > v.field.Min.X+eps && p.X < v.field.Max.X-eps &&
		p.Y > v.field.Min.Y+eps && p.Y < v.field.Max.Y-eps
}

// coverageExcluding counts sensors other than self covering p.
func (v *verifier) coverageExcluding(p geom.Point, self int) int {
	v.checks++
	n := 0
	for _, id := range v.m.SensorsInBall(p, v.maxRadius()) {
		if id == self {
			continue
		}
		pos, _ := v.m.SensorPos(id)
		rs, _ := v.m.SensorRadius(id)
		if pos.Dist2(p) <= rs*rs {
			n++
		}
	}
	return n
}

// witnessOutside returns a point just outside the circle at the given
// angle — a concrete under-covered field point when verification fails.
func witnessOutside(c geom.Point, r, theta float64) geom.Point {
	const eps = 1e-7
	return geom.Point{
		X: c.X + (r+eps)*math.Cos(theta),
		Y: c.Y + (r+eps)*math.Sin(theta),
	}
}

// circleRectCrossings returns the angles at which the circle crosses the
// rectangle's boundary lines (within the respective edges).
func circleRectCrossings(c geom.Point, r float64, rect geom.Rect) []float64 {
	var out []float64
	// Vertical edges x = X, y in [Min.Y, Max.Y].
	for _, X := range []float64{rect.Min.X, rect.Max.X} {
		dx := X - c.X
		if math.Abs(dx) >= r {
			continue
		}
		dy := math.Sqrt(r*r - dx*dx)
		for _, y := range []float64{c.Y - dy, c.Y + dy} {
			if y >= rect.Min.Y && y <= rect.Max.Y {
				out = append(out, normAngle(math.Atan2(y-c.Y, dx)))
			}
		}
	}
	// Horizontal edges y = Y, x in [Min.X, Max.X].
	for _, Y := range []float64{rect.Min.Y, rect.Max.Y} {
		dy := Y - c.Y
		if math.Abs(dy) >= r {
			continue
		}
		dx := math.Sqrt(r*r - dy*dy)
		for _, x := range []float64{c.X - dx, c.X + dx} {
			if x >= rect.Min.X && x <= rect.Max.X {
				out = append(out, normAngle(math.Atan2(dy, x-c.X)))
			}
		}
	}
	return out
}

func normAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

func sortFloats(xs []float64) {
	// Insertion sort: event lists are short (O(neighbors)).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// LatticeUncovered scans a res×res lattice over the field and returns
// the lattice points covered by fewer than k sensors — the brute-force
// ground truth the tests compare Verify against.
func LatticeUncovered(m *coverage.Map, k, res int) []geom.Point {
	field := m.Field()
	var out []geom.Point
	v := &verifier{m: m, k: k, field: field}
	for iy := 0; iy < res; iy++ {
		for ix := 0; ix < res; ix++ {
			p := geom.Point{
				X: field.Min.X + (float64(ix)+0.5)/float64(res)*field.W(),
				Y: field.Min.Y + (float64(iy)+0.5)/float64(res)*field.H(),
			}
			if v.coverage(p) < k {
				out = append(out, p)
			}
		}
	}
	return out
}

// LatticeCoverageFrac returns the fraction of a res×res lattice covered
// by at least level sensors — the analytic-ish area estimate used to
// quantify the quality of the low-discrepancy point approximation.
func LatticeCoverageFrac(m *coverage.Map, level, res int) float64 {
	unc := len(LatticeUncovered(m, level, res))
	total := res * res
	return float64(total-unc) / float64(total)
}

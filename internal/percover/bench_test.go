package percover

import (
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

func benchDeployment(b *testing.B, k int) *coverage.Map {
	b.Helper()
	field := geom.Square(100)
	pts := lowdisc.Halton{}.Points(2000, field)
	m := coverage.New(field, pts, 4, k)
	r := rng.New(1)
	for id := 0; id < 200; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	(core.Centralized{}).Deploy(m, rng.New(2), core.Options{})
	return m
}

// BenchmarkVerifyPaperScale measures the exact perimeter verification on
// the full paper field (≈800 sensors at k=3).
func BenchmarkVerifyPaperScale(b *testing.B) {
	m := benchDeployment(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Verify(m, 3)
	}
}

// BenchmarkLattice200 measures the brute-force comparison baseline.
func BenchmarkLattice200(b *testing.B) {
	m := benchDeployment(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LatticeCoverageFrac(m, 1, 200)
	}
}

package percover

import (
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

func emptyMap(side float64) *coverage.Map {
	return coverage.New(geom.Square(side), nil, 4, 1)
}

func TestVerifyTrivialCases(t *testing.T) {
	m := emptyMap(20)
	if res := Verify(m, 0); !res.Covered {
		t.Error("k=0 must always verify")
	}
	if res := Verify(m, 1); res.Covered {
		t.Error("empty field cannot be 1-covered")
	}
	// One huge sensor covering the whole field.
	m.AddSensorRadius(1, geom.Pt(10, 10), 100)
	if res := Verify(m, 1); !res.Covered {
		t.Errorf("giant disk should 1-cover the field (witness %v)", res.Witness)
	}
	if res := Verify(m, 2); res.Covered {
		t.Error("one sensor cannot 2-cover")
	}
}

func TestVerifySingleSmallSensor(t *testing.T) {
	m := emptyMap(20)
	m.AddSensor(1, geom.Pt(10, 10)) // rs=4 leaves most of the field bare
	res := Verify(m, 1)
	if res.Covered {
		t.Fatal("partial coverage verified as full")
	}
	// The witness must genuinely be an uncovered field point.
	if !m.Field().Contains(res.Witness) {
		t.Errorf("witness %v outside field", res.Witness)
	}
	if res.Witness.Dist(geom.Pt(10, 10)) <= 4 {
		t.Errorf("witness %v is actually covered", res.Witness)
	}
}

func TestVerifyHoleBetweenSensors(t *testing.T) {
	// Four sensors at the corners of a square leave a hole at its center
	// if spaced beyond sqrt(2)*rs.
	m := emptyMap(14)
	for i, p := range []geom.Point{{X: 1, Y: 1}, {X: 13, Y: 1}, {X: 1, Y: 13}, {X: 13, Y: 13}} {
		m.AddSensorRadius(i, p, 7.5)
	}
	res := Verify(m, 1)
	if res.Covered {
		t.Fatal("central hole not detected")
	}
	// Witness must be uncovered.
	cov := 0
	for i, p := range []geom.Point{{X: 1, Y: 1}, {X: 13, Y: 1}, {X: 1, Y: 13}, {X: 13, Y: 13}} {
		_ = i
		if p.Dist(res.Witness) <= 7.5 {
			cov++
		}
	}
	if cov != 0 {
		t.Errorf("witness %v covered %d times", res.Witness, cov)
	}
	// Now plug the hole.
	m.AddSensorRadius(9, geom.Pt(7, 7), 7.5)
	if res := Verify(m, 1); !res.Covered {
		t.Errorf("plugged field should verify (witness %v)", res.Witness)
	}
}

// The verifier must agree with the brute-force lattice on random
// configurations, in both directions, for several k.
func TestVerifyMatchesLattice(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 40; trial++ {
		m := coverage.New(geom.Square(30), nil, 4, 1)
		n := 5 + r.Intn(40)
		for id := 0; id < n; id++ {
			m.AddSensorRadius(id, r.PointInRect(m.Field()), 2+r.Float64()*6)
		}
		for _, k := range []int{1, 2, 3} {
			res := Verify(m, k)
			unc := LatticeUncovered(m, k, 120)
			if res.Covered && len(unc) > 0 {
				t.Fatalf("trial %d k=%d: verifier says covered, lattice found %d holes (e.g. %v)",
					trial, k, len(unc), unc[0])
			}
			if !res.Covered {
				// The witness must be a real under-covered field point.
				if !m.Field().Contains(res.Witness) {
					t.Fatalf("trial %d k=%d: witness %v outside field", trial, k, res.Witness)
				}
				cov := countCoverage(m, res.Witness)
				if cov >= k {
					t.Fatalf("trial %d k=%d: witness %v covered %d >= k times",
						trial, k, res.Witness, cov)
				}
			}
		}
	}
}

func countCoverage(m *coverage.Map, p geom.Point) int {
	n := 0
	for _, id := range m.SensorIDs() {
		pos, _ := m.SensorPos(id)
		rs, _ := m.SensorRadius(id)
		if pos.Dist2(p) <= rs*rs {
			n++
		}
	}
	return n
}

// A full DECOR deployment must pass the exact verifier — the
// discrepancy-point claim, validated analytically. The sample spacing of
// 2000 Halton points on a 100x100 field (~1.6 units) is about half the
// rs=4 disk radius, so point-coverage implies area-coverage at k with
// slack; we verify at k and tolerate sliver misses only by checking that
// any witness is at most a sliver away from covered.
func TestDecorDeploymentVerifiesExactly(t *testing.T) {
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(1000, field)
	for _, k := range []int{1, 2} {
		m := coverage.New(field, pts, 4, k)
		(core.Centralized{}).Deploy(m, rng.New(3), core.Options{})
		res := Verify(m, k)
		if !res.Covered {
			// Point sets approximate area: tiny slivers between sample
			// points can stay under-covered. They must be tiny: within
			// 1.5 units of a k-covered sample point.
			// Mean sample spacing is sqrt(2500/1000) ≈ 1.6; corner gaps
			// run larger.
			d := nearestCoveredSampleDist(m, res.Witness, k)
			if d > 2.5 {
				t.Errorf("k=%d: witness %v is %.2f from any covered sample point — not a sliver",
					k, res.Witness, d)
			}
		}
	}
}

func nearestCoveredSampleDist(m *coverage.Map, p geom.Point, k int) float64 {
	best := 1e18
	for i := 0; i < m.NumPoints(); i++ {
		if m.Count(i) >= k {
			if d := m.Point(i).Dist(p); d < best {
				best = d
			}
		}
	}
	return best
}

func TestLatticeCoverageFrac(t *testing.T) {
	m := emptyMap(20)
	if got := LatticeCoverageFrac(m, 1, 50); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
	m.AddSensorRadius(1, geom.Pt(10, 10), 100)
	if got := LatticeCoverageFrac(m, 1, 50); got != 1 {
		t.Errorf("full coverage = %v", got)
	}
	// Half-plane-ish: a disk covering the left half approximately.
	m2 := emptyMap(20)
	m2.AddSensorRadius(1, geom.Pt(0, 10), 15)
	frac := LatticeCoverageFrac(m2, 1, 200)
	// Exact area: quarter disk area intersected with field / 400.
	want := geom.Disk{Center: geom.Pt(0, 10), R: 15}.IntersectionArea(m2.Field()) / 400
	if diff := frac - want; diff > 0.01 || diff < -0.01 {
		t.Errorf("lattice frac %v vs analytic %v", frac, want)
	}
}

// The headline number for EXPERIMENTS.md: the Halton point-set coverage
// estimate agrees with the lattice area estimate to within ~1%.
func TestPointSetEstimateMatchesLattice(t *testing.T) {
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(1000, field)
	m := coverage.New(field, pts, 4, 2)
	r := rng.New(8)
	for id := 0; id < 120; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	for _, level := range []int{1, 2} {
		pointEst := m.CoverageFrac(level)
		latticeEst := LatticeCoverageFrac(m, level, 250)
		if diff := pointEst - latticeEst; diff > 0.015 || diff < -0.015 {
			t.Errorf("level %d: point estimate %v vs lattice %v", level, pointEst, latticeEst)
		}
	}
}

// Package render draws fields, sample-point sets, deployments and failure
// regions as ASCII (for terminals and tests) and SVG (for reports),
// reproducing the paper's illustration figures: the Halton-approximated
// field (Fig. 4), a resulting DECOR deployment (Fig. 5) and an uncovered
// disaster area (Fig. 6).
package render

import (
	"fmt"
	"strings"

	"decor/internal/coverage"
	"decor/internal/geom"
)

// ASCII renders the coverage map as a character grid of the given width
// (height follows the field's aspect ratio). Each character cell shows
// the minimum coverage count of the sample points inside it:
//
//	' '  no sample point in the cell
//	'0'–'9' minimum coverage count (capped at 9)
//	'*'  a sensor is located in the cell (overrides the digit)
func ASCII(m *coverage.Map, width int) string {
	if width < 1 {
		panic("render: width must be positive")
	}
	field := m.Field()
	height := int(float64(width) * field.H() / field.W() / 2) // terminal cells are ~2x tall
	if height < 1 {
		height = 1
	}
	cw := field.W() / float64(width)
	ch := field.H() / float64(height)
	minCount := make([]int, width*height)
	for i := range minCount {
		minCount[i] = -1
	}
	cellOf := func(p geom.Point) int {
		cx := int((p.X - field.Min.X) / cw)
		cy := int((p.Y - field.Min.Y) / ch)
		if cx >= width {
			cx = width - 1
		}
		if cy >= height {
			cy = height - 1
		}
		if cx < 0 {
			cx = 0
		}
		if cy < 0 {
			cy = 0
		}
		return cy*width + cx
	}
	for i := 0; i < m.NumPoints(); i++ {
		c := cellOf(m.Point(i))
		if minCount[c] < 0 || m.Count(i) < minCount[c] {
			minCount[c] = m.Count(i)
		}
	}
	sensor := make([]bool, width*height)
	for _, id := range m.SensorIDs() {
		p, _ := m.SensorPos(id)
		sensor[cellOf(p)] = true
	}
	var b strings.Builder
	// Render top row (max Y) first.
	for cy := height - 1; cy >= 0; cy-- {
		for cx := 0; cx < width; cx++ {
			i := cy*width + cx
			switch {
			case sensor[i]:
				b.WriteByte('*')
			case minCount[i] < 0:
				b.WriteByte(' ')
			case minCount[i] > 9:
				b.WriteByte('9')
			default:
				b.WriteByte(byte('0' + minCount[i]))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SVGOptions controls SVG rendering.
type SVGOptions struct {
	// Scale converts field units to pixels (default 6).
	Scale float64
	// ShowPoints draws the sample points (uncovered points are
	// highlighted).
	ShowPoints bool
	// ShowSensors draws the sensors with their sensing disks.
	ShowSensors bool
	// FailureDisk, if non-zero radius, is drawn as the disaster region.
	FailureDisk geom.Disk
	// VoronoiCells, if non-nil, are drawn as polygon outlines (e.g. the
	// exact Voronoi diagram of the sensors from internal/voronoi).
	VoronoiCells [][]geom.Point
	// Tour, if non-nil, is drawn as the deployment robot's route: a
	// polyline through the waypoints in order.
	Tour []geom.Point
}

// SVG renders the coverage map as a standalone SVG document.
func SVG(m *coverage.Map, opt SVGOptions) string {
	scale := opt.Scale
	if scale <= 0 {
		scale = 6
	}
	field := m.Field()
	w := field.W() * scale
	h := field.H() * scale
	// SVG y grows downward; flip so the field's min-y is at the bottom.
	px := func(p geom.Point) (float64, float64) {
		return (p.X - field.Min.X) * scale, h - (p.Y-field.Min.Y)*scale
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="white" stroke="black"/>`+"\n", w, h)
	if opt.FailureDisk.R > 0 {
		x, y := px(opt.FailureDisk.Center)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#fdd" stroke="#c00" stroke-dasharray="4"/>`+"\n",
			x, y, opt.FailureDisk.R*scale)
	}
	if len(opt.Tour) >= 2 {
		b.WriteString(`<polyline points="`)
		for _, p := range opt.Tour {
			x, y := px(p)
			fmt.Fprintf(&b, "%.1f,%.1f ", x, y)
		}
		b.WriteString(`" fill="none" stroke="#383" stroke-width="1.2" stroke-dasharray="6 3"/>` + "\n")
	}
	for _, cell := range opt.VoronoiCells {
		if len(cell) < 3 {
			continue
		}
		b.WriteString(`<polygon points="`)
		for _, p := range cell {
			x, y := px(p)
			fmt.Fprintf(&b, "%.1f,%.1f ", x, y)
		}
		b.WriteString(`" fill="none" stroke="#cb8" stroke-width="0.7"/>` + "\n")
	}
	if opt.ShowSensors {
		for _, id := range m.SensorIDs() {
			p, _ := m.SensorPos(id)
			x, y := px(p)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#9cf" stroke-width="0.5"/>`+"\n",
				x, y, m.Rs()*scale)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2" fill="#03c"/>`+"\n", x, y)
		}
	}
	if opt.ShowPoints {
		for i := 0; i < m.NumPoints(); i++ {
			x, y := px(m.Point(i))
			color := "#888"
			if m.Count(i) < m.K() {
				color = "#e00"
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="1" fill="%s"/>`+"\n", x, y, color)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

package render

import (
	"strings"
	"testing"

	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
)

func testMap() *coverage.Map {
	field := geom.Square(40)
	pts := lowdisc.Halton{}.Points(200, field)
	m := coverage.New(field, pts, 4, 1)
	m.AddSensor(1, geom.Pt(10, 10))
	m.AddSensor(2, geom.Pt(30, 30))
	return m
}

func TestASCIIDimensions(t *testing.T) {
	m := testMap()
	out := ASCII(m, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 20 { // square field, 2:1 aspect correction
		t.Fatalf("lines = %d, want 20", len(lines))
	}
	for i, l := range lines {
		if len(l) != 40 {
			t.Fatalf("line %d width = %d", i, len(l))
		}
	}
}

func TestASCIIMarksSensorsAndCoverage(t *testing.T) {
	m := testMap()
	out := ASCII(m, 40)
	if !strings.Contains(out, "*") {
		t.Error("no sensor markers")
	}
	if !strings.Contains(out, "0") {
		t.Error("no uncovered cells on a sparse field")
	}
	if !strings.Contains(out, "1") {
		t.Error("no covered cells near sensors")
	}
}

func TestASCIICoverageSaturation(t *testing.T) {
	field := geom.Square(4)
	pts := []geom.Point{{X: 2, Y: 2}}
	m := coverage.New(field, pts, 4, 1)
	for id := 0; id < 12; id++ {
		m.AddSensor(id, geom.Pt(1, 1))
	}
	out := ASCII(m, 4)
	if !strings.Contains(out, "9") && !strings.Contains(out, "*") {
		t.Errorf("expected saturated digit or sensor marker, got:\n%s", out)
	}
}

func TestASCIIPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width 0 should panic")
		}
	}()
	ASCII(testMap(), 0)
}

func TestSVGWellFormed(t *testing.T) {
	m := testMap()
	svg := SVG(m, SVGOptions{ShowPoints: true, ShowSensors: true,
		FailureDisk: geom.DiskAt(20, 20, 8)})
	for _, want := range []string{
		"<svg", "</svg>", "<rect", "stroke-dasharray", // failure disc
		`fill="#e00"`, // uncovered points highlighted
		`fill="#03c"`, // sensor dots
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// One circle per point + two per sensor + failure disc.
	circles := strings.Count(svg, "<circle")
	want := m.NumPoints() + 2*m.NumSensors() + 1
	if circles != want {
		t.Errorf("circles = %d, want %d", circles, want)
	}
}

func TestSVGOptionsRespected(t *testing.T) {
	m := testMap()
	bare := SVG(m, SVGOptions{})
	if strings.Count(bare, "<circle") != 0 {
		t.Error("bare SVG should contain no circles")
	}
	pointsOnly := SVG(m, SVGOptions{ShowPoints: true})
	if got := strings.Count(pointsOnly, "<circle"); got != m.NumPoints() {
		t.Errorf("points-only circles = %d", got)
	}
	scaled := SVG(m, SVGOptions{Scale: 10})
	if !strings.Contains(scaled, `width="400"`) {
		t.Error("scale not applied")
	}
}

func TestSVGTourOverlay(t *testing.T) {
	m := testMap()
	svg := SVG(m, SVGOptions{Tour: []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 10}, {X: 20, Y: 5}}})
	if !strings.Contains(svg, "<polyline") {
		t.Error("tour polyline missing")
	}
	// A single waypoint is not a route.
	if strings.Contains(SVG(m, SVGOptions{Tour: []geom.Point{{X: 1, Y: 1}}}), "<polyline") {
		t.Error("degenerate tour should not render")
	}
}

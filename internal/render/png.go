package render

import (
	"image"
	"image/color"
	"image/png"
	"io"

	"decor/internal/coverage"
	"decor/internal/geom"
)

// PNGOptions controls raster rendering.
type PNGOptions struct {
	// Scale converts field units to pixels (default 6).
	Scale float64
	// ShowPoints draws sample points (red when under-covered).
	ShowPoints bool
	// ShowSensors draws sensor positions and their sensing disk
	// outlines.
	ShowSensors bool
	// FailureDisk, when non-zero, is shaded as the disaster region.
	FailureDisk geom.Disk
	// Heatmap shades each pixel by its analytic coverage count (slower;
	// overrides the white background).
	Heatmap bool
}

// PNG rasterizes the coverage map and encodes it as PNG to w.
func PNG(w io.Writer, m *coverage.Map, opt PNGOptions) error {
	scale := opt.Scale
	if scale <= 0 {
		scale = 6
	}
	field := m.Field()
	width := int(field.W()*scale) + 1
	height := int(field.H()*scale) + 1
	img := image.NewRGBA(image.Rect(0, 0, width, height))

	px := func(p geom.Point) (int, int) {
		return int((p.X - field.Min.X) * scale), height - 1 - int((p.Y-field.Min.Y)*scale)
	}
	toField := func(x, y int) geom.Point {
		return geom.Point{
			X: field.Min.X + float64(x)/scale,
			Y: field.Min.Y + float64(height-1-y)/scale,
		}
	}

	// Background.
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			var c color.RGBA
			if opt.Heatmap {
				p := toField(x, y)
				n := 0
				for _, id := range m.SensorsInBall(p, m.MaxSensorRadius()) {
					pos, _ := m.SensorPos(id)
					rs, _ := m.SensorRadius(id)
					if pos.Dist2(p) <= rs*rs {
						n++
					}
				}
				c = heatColor(n, m.K())
			} else {
				c = color.RGBA{255, 255, 255, 255}
			}
			img.SetRGBA(x, y, c)
		}
	}
	// Failure disk shading.
	if opt.FailureDisk.R > 0 {
		shadeDisk(img, opt.FailureDisk, scale, field, color.RGBA{255, 200, 200, 255}, !opt.Heatmap)
	}
	// Sensing disk outlines + sensor dots.
	if opt.ShowSensors {
		for _, id := range m.SensorIDs() {
			p, _ := m.SensorPos(id)
			rs, _ := m.SensorRadius(id)
			drawCircle(img, p, rs, scale, field, color.RGBA{150, 190, 255, 255})
		}
		for _, id := range m.SensorIDs() {
			p, _ := m.SensorPos(id)
			x, y := px(p)
			fillSquare(img, x, y, 2, color.RGBA{0, 40, 200, 255})
		}
	}
	// Sample points.
	if opt.ShowPoints {
		for i := 0; i < m.NumPoints(); i++ {
			x, y := px(m.Point(i))
			c := color.RGBA{120, 120, 120, 255}
			if m.Count(i) < m.K() {
				c = color.RGBA{220, 0, 0, 255}
			}
			fillSquare(img, x, y, 1, c)
		}
	}
	return png.Encode(w, img)
}

// heatColor maps a coverage count to a blue gradient; deficits show red.
func heatColor(n, k int) color.RGBA {
	if n < k {
		// Under-covered: red shades by severity.
		v := uint8(200 - 150*n/maxI(k, 1))
		return color.RGBA{255, 255 - v, 255 - v, 255}
	}
	// Covered: deepening blue with surplus, saturating at k+4.
	surplus := n - k
	if surplus > 4 {
		surplus = 4
	}
	v := uint8(230 - 40*surplus)
	return color.RGBA{v, v, 255, 255}
}

func shadeDisk(img *image.RGBA, d geom.Disk, scale float64, field geom.Rect, c color.RGBA, opaque bool) {
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			p := geom.Point{
				X: field.Min.X + float64(x)/scale,
				Y: field.Min.Y + float64(b.Max.Y-1-y)/scale,
			}
			if d.Contains(p) {
				if opaque {
					img.SetRGBA(x, y, c)
				} else {
					old := img.RGBAAt(x, y)
					img.SetRGBA(x, y, color.RGBA{
						avg(old.R, c.R), avg(old.G, c.G), avg(old.B, c.B), 255,
					})
				}
			}
		}
	}
}

func drawCircle(img *image.RGBA, center geom.Point, r, scale float64, field geom.Rect, c color.RGBA) {
	// Parametric outline with enough steps for pixel continuity.
	steps := int(2*3.15*r*scale) + 8
	h := img.Bounds().Max.Y
	for i := 0; i < steps; i++ {
		theta := float64(i) / float64(steps) * 2 * 3.141592653589793
		p := geom.Disk{Center: center, R: r}.PointAt(theta)
		x := int((p.X - field.Min.X) * scale)
		y := h - 1 - int((p.Y-field.Min.Y)*scale)
		if image.Pt(x, y).In(img.Bounds()) {
			img.SetRGBA(x, y, c)
		}
	}
}

func fillSquare(img *image.RGBA, cx, cy, half int, c color.RGBA) {
	for y := cy - half; y <= cy+half; y++ {
		for x := cx - half; x <= cx+half; x++ {
			if image.Pt(x, y).In(img.Bounds()) {
				img.SetRGBA(x, y, c)
			}
		}
	}
}

func avg(a, b uint8) uint8 { return uint8((int(a) + int(b)) / 2) }

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

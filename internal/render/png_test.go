package render

import (
	"bytes"
	"image/png"
	"strings"
	"testing"

	"decor/internal/geom"
	"decor/internal/voronoi"
)

func TestPNGEncodesValidImage(t *testing.T) {
	m := testMap()
	var buf bytes.Buffer
	if err := PNG(&buf, m, PNGOptions{ShowPoints: true, ShowSensors: true,
		FailureDisk: geom.DiskAt(20, 20, 8)}); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b := img.Bounds()
	// 40-unit field at default scale 6 -> 241x241.
	if b.Dx() != 241 || b.Dy() != 241 {
		t.Errorf("bounds = %v", b)
	}
}

func TestPNGHeatmap(t *testing.T) {
	m := testMap()
	var buf bytes.Buffer
	if err := PNG(&buf, m, PNGOptions{Heatmap: true, Scale: 3}); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Heatmap: a pixel near a sensor must differ from a far pixel.
	near := img.At(3*10, img.Bounds().Max.Y-1-3*10) // field (10,10): covered
	far := img.At(3*20, img.Bounds().Max.Y-1-3*2)   // field (20,2): bare
	if near == far {
		t.Error("heatmap shows no contrast between covered and bare regions")
	}
}

func TestSVGVoronoiOverlay(t *testing.T) {
	m := testMap()
	sites := []geom.Point{{X: 10, Y: 10}, {X: 30, Y: 30}}
	cells := voronoi.Diagram(sites, m.Field())
	svg := SVG(m, SVGOptions{VoronoiCells: cells})
	if got := strings.Count(svg, "<polygon"); got != 2 {
		t.Errorf("polygons = %d, want 2", got)
	}
	// Degenerate cells are skipped.
	svg = SVG(m, SVGOptions{VoronoiCells: [][]geom.Point{nil, {{X: 1, Y: 1}}}})
	if strings.Contains(svg, "<polygon") {
		t.Error("degenerate cells should not render")
	}
}

func TestHeatColorRanges(t *testing.T) {
	k := 3
	under := heatColor(0, k)
	exact := heatColor(3, k)
	over := heatColor(9, k)
	if under.R != 255 || under.G == 255 {
		t.Errorf("under-covered color = %v, want reddish", under)
	}
	if exact.B != 255 || exact.R == 255 {
		t.Errorf("covered color = %v, want bluish", exact)
	}
	if over.R >= exact.R {
		t.Errorf("over-covered should be deeper blue: %v vs %v", over, exact)
	}
}

package experiment

import (
	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/failure"
	"decor/internal/geom"
	"decor/internal/rng"
	"decor/internal/stats"
)

// kRange returns the paper's x axis for the k sweeps.
func kRange() []float64 { return []float64{1, 2, 3, 4, 5} }

// Fig7 reproduces "Coverage achieved with different number of sensors,
// for k = 3": the percentage of 3-covered points as the node count grows,
// for all six methods.
func Fig7(cfg Config) Figure {
	const k = 3
	// The paper's x axis runs to 3500 nodes on the 100×100 field; scale
	// by area for reduced configs.
	xmax := 3500 * cfg.FieldSide * cfg.FieldSide / 10000.0
	xs := stats.Linspace(0, xmax, 15)
	fig := Figure{
		ID: "fig7", Title: "Coverage achieved with different number of sensors, k=3",
		XLabel: "nodes", YLabel: "percentage of covered area",
	}
	methods := cfg.Methods()
	runs := make([][][]float64, len(methods)) // [method][run] -> series
	for mi := range runs {
		runs[mi] = make([][]float64, cfg.Runs)
	}
	cfg.forEachCell(len(methods)*cfg.Runs, func(cell int) {
		mi, run := cell/cfg.Runs, cell%cfg.Runs
		m := cfg.NewMap(k, run)
		res := methods[mi].Deploy(m, cfg.DeployRNG(run), core.Options{MaxPlacements: int(xmax)})
		// Replay the placement order on a fresh field, sampling the
		// k-coverage fraction after each number of added nodes (the
		// x axis counts nodes the algorithm deploys, matching Fig. 8's
		// restoration accounting; the pre-deployed network contributes
		// the small nonzero coverage at x = 0).
		replay := cfg.NewMap(k, run)
		ys := make([]float64, len(xs))
		next := 0
		for i, x := range xs {
			for next < int(x) && next < len(res.Placed) {
				pl := res.Placed[next]
				replay.AddSensor(pl.ID, pl.Pos)
				next++
			}
			ys[i] = 100 * replay.CoverageFrac(k)
		}
		runs[mi][run] = ys
	})
	for mi, meth := range methods {
		fig.Series = append(fig.Series, Series{Label: meth.Name(), X: xs, Y: stats.MeanSeries(runs[mi])})
	}
	return fig
}

// Fig8 reproduces "Number of nodes needed for k-coverage of the area vs.
// k": the sensors each method deploys to reach 100% k-coverage. Counting
// deployed (not field-total) nodes matches the paper's reference values —
// 788 (centralized), ~891 (Voronoi) and 1196 (grid 5×5) at k = 4 — and
// its framing of the problem as *restoration* of a partially covered
// field.
func Fig8(cfg Config) Figure {
	fig := Figure{
		ID: "fig8", Title: "Number of nodes needed for 100% k-coverage vs. k",
		XLabel: "k", YLabel: "nodes needed for 100% coverage",
	}
	forEachMethodK(cfg, cfg.Methods(), &fig, func(m *coverage.Map, res core.Result) float64 {
		return float64(res.NumPlaced())
	})
	return fig
}

// Fig9 reproduces "Percentage of redundant nodes vs. k".
func Fig9(cfg Config) Figure {
	fig := Figure{
		ID: "fig9", Title: "Percentage of redundant nodes vs. k",
		XLabel: "k", YLabel: "percentage of redundant nodes",
	}
	forEachMethodK(cfg, cfg.Methods(), &fig, func(m *coverage.Map, res core.Result) float64 {
		if m.NumSensors() == 0 {
			return 0
		}
		return 100 * float64(len(m.RedundantSensors())) / float64(m.NumSensors())
	})
	return fig
}

// Fig10 reproduces "Message overhead of DECOR": messages per cell vs. k
// for the four distributed variants (the baselines send none).
func Fig10(cfg Config) Figure {
	fig := Figure{
		ID: "fig10", Title: "Message overhead of DECOR",
		XLabel: "k", YLabel: "number of messages / cell",
	}
	forEachMethodK(cfg, cfg.DecorMethods(), &fig, func(m *coverage.Map, res core.Result) float64 {
		return res.MessagesPerCell()
	})
	return fig
}

// forEachMethodK runs every method over k = 1..5 × cfg.Runs fields and
// aggregates measure() into one series per method. The (method, k, run)
// cells fan out across the worker pool; measure must be safe to call from
// any goroutine on the cell's own map.
func forEachMethodK(cfg Config, methods []core.Method, fig *Figure, measure func(*coverage.Map, core.Result) float64) {
	ks := kRange()
	perK := len(ks) * cfg.Runs
	vals := make([]float64, len(methods)*perK) // [method][k][run] flattened
	cfg.forEachCell(len(vals), func(cell int) {
		mi, rem := cell/perK, cell%perK
		ki, run := rem/cfg.Runs, rem%cfg.Runs
		m := cfg.NewMap(int(ks[ki]), run)
		res := methods[mi].Deploy(m, cfg.DeployRNG(run), core.Options{})
		vals[cell] = measure(m, res)
	})
	for mi, meth := range methods {
		ys := make([]float64, len(ks))
		errs := make([]float64, len(ks))
		for i := range ks {
			row := vals[mi*perK+i*cfg.Runs : mi*perK+(i+1)*cfg.Runs]
			sum := stats.Summarize(row)
			ys[i] = sum.Mean
			errs[i] = sum.Std
		}
		fig.Series = append(fig.Series, Series{Label: meth.Name(), X: ks, Y: ys, Err: errs})
	}
}

// Fig11 reproduces "3-coverage under random failures": deployments built
// for k = 3, then a random fraction of all nodes fails; y is the
// percentage of points still covered by at least one sensor.
func Fig11(cfg Config) Figure {
	const k = 3
	xs := stats.Linspace(0, 30, 7) // 0%..30% failed, the paper's axis
	fig := Figure{
		ID: "fig11", Title: "3-coverage under random failures",
		XLabel: "percentage of nodes failed", YLabel: "percentage of covered points",
	}
	methods := cfg.Methods()
	runs := make([][][]float64, len(methods)) // [method][run] -> series
	for mi := range runs {
		runs[mi] = make([][]float64, cfg.Runs)
	}
	cfg.forEachCell(len(methods)*cfg.Runs, func(cell int) {
		mi, run := cell/cfg.Runs, cell%cfg.Runs
		m := cfg.NewMap(k, run)
		methods[mi].Deploy(m, cfg.DeployRNG(run), core.Options{})
		eval := newFailureEval(m)
		ys := make([]float64, len(xs))
		for i, pct := range xs {
			sum := 0.0
			for d := 0; d < cfg.FailureDraws; d++ {
				r := cfg.failRNG(run, d)
				ids := (failure.Random{Fraction: pct / 100}).Select(m, r)
				sum += eval.after(ids, 1)
			}
			ys[i] = 100 * sum / float64(cfg.FailureDraws)
		}
		runs[mi][run] = ys
	})
	for mi, meth := range methods {
		fig.Series = append(fig.Series, Series{Label: meth.Name(), X: xs, Y: stats.MeanSeries(runs[mi])})
	}
	return fig
}

// Fig12 reproduces "Maximum allowed failures for 1-coverage of 90% of the
// area": the largest random-failure percentage each k-deployment
// tolerates while at least 90% of the points remain 1-covered.
func Fig12(cfg Config) Figure {
	ks := kRange()
	fig := Figure{
		ID: "fig12", Title: "Maximum allowed failures for 1-coverage of 90% of the area",
		XLabel: "k", YLabel: "maximum percentage of failed nodes",
	}
	methods := cfg.Methods()
	perK := len(ks) * cfg.Runs
	vals := make([]float64, len(methods)*perK) // [method][k][run] flattened
	cfg.forEachCell(len(vals), func(cell int) {
		mi, rem := cell/perK, cell%perK
		ki, run := rem/cfg.Runs, rem%cfg.Runs
		m := cfg.NewMap(int(ks[ki]), run)
		methods[mi].Deploy(m, cfg.DeployRNG(run), core.Options{})
		eval := newFailureEval(m)
		tolerated := stats.MaxTrueFraction(1, 0.005, func(f float64) bool {
			sum := 0.0
			for d := 0; d < cfg.FailureDraws; d++ {
				r := cfg.failRNG(run, d)
				ids := (failure.Random{Fraction: f}).Select(m, r)
				sum += eval.after(ids, 1)
			}
			return sum/float64(cfg.FailureDraws) >= 0.9
		})
		vals[cell] = 100 * tolerated
	})
	for mi, meth := range methods {
		ys := make([]float64, len(ks))
		for i := range ks {
			ys[i] = stats.Mean(vals[mi*perK+i*cfg.Runs : mi*perK+(i+1)*cfg.Runs])
		}
		fig.Series = append(fig.Series, Series{Label: meth.Name(), X: ks, Y: ys})
	}
	return fig
}

// AreaFailureDisk returns the disaster disc used by Figs. 6, 13 and 14:
// radius cfg.AreaFailureRadius centered on the field (≈17% of the area at
// the paper's parameters).
func (c Config) AreaFailureDisk() geom.Disk {
	return geom.Disk{Center: c.Field().Center(), R: c.AreaFailureRadius}
}

// Fig13 reproduces "k-covered points after an area failure": the
// percentage of points still k-covered immediately after the disaster,
// before restoration. The paper notes it is essentially method-
// independent.
func Fig13(cfg Config) Figure {
	fig := Figure{
		ID: "fig13", Title: "k-covered points after an area failure",
		XLabel: "k", YLabel: "percentage of k-covered points",
	}
	forEachMethodK(cfg, cfg.Methods(), &fig, func(m *coverage.Map, res core.Result) float64 {
		ids := (failure.Area{Disk: cfg.AreaFailureDisk()}).Select(m, nil)
		return 100 * coverageAfterFailure(m, ids, m.K())
	})
	return fig
}

// Fig14 reproduces "Number of nodes required to recover coverage of a
// failure area": after the area disaster, each method restores
// k-coverage; y is the number of extra nodes it deploys.
func Fig14(cfg Config) Figure {
	ks := kRange()
	fig := Figure{
		ID: "fig14", Title: "Nodes required to recover coverage of a failure area",
		XLabel: "k", YLabel: "extra nodes needed",
	}
	methods := cfg.Methods()
	perK := len(ks) * cfg.Runs
	vals := make([]float64, len(methods)*perK) // [method][k][run] flattened
	cfg.forEachCell(len(vals), func(cell int) {
		mi, rem := cell/perK, cell%perK
		ki, run := rem/cfg.Runs, rem%cfg.Runs
		m := cfg.NewMap(int(ks[ki]), run)
		methods[mi].Deploy(m, cfg.DeployRNG(run), core.Options{})
		ids := (failure.Area{Disk: cfg.AreaFailureDisk()}).Select(m, nil)
		failure.Apply(m, ids)
		res := methods[mi].Deploy(m, cfg.restoreRNG(run), core.Options{})
		vals[cell] = float64(res.NumPlaced())
	})
	for mi, meth := range methods {
		ys := make([]float64, len(ks))
		for i := range ks {
			ys[i] = stats.Mean(vals[mi*perK+i*cfg.Runs : mi*perK+(i+1)*cfg.Runs])
		}
		fig.Series = append(fig.Series, Series{Label: meth.Name(), X: ks, Y: ys})
	}
	return fig
}

func (c Config) failRNG(run, draw int) *rng.RNG {
	return rng.New(c.Seed + uint64(run)*333667 + uint64(draw)*101 + 29)
}

func (c Config) restoreRNG(run int) *rng.RNG {
	return rng.New(c.Seed + uint64(run)*555557 + 31)
}

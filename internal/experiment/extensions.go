package experiment

import (
	"fmt"
	"math"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/energy"
	"decor/internal/failure"
	"decor/internal/lowdisc"
	"decor/internal/network"
	"decor/internal/partition"
	"decor/internal/percover"
	"decor/internal/reliability"
	"decor/internal/rng"
	"decor/internal/stats"
)

// This file adds extension experiments beyond the paper's eight data
// figures: the ablations DESIGN.md §5 calls out, plus validations of the
// paper's §2 claims (k-connectivity corollary, reliability model,
// correlated failures) that the paper asserts but does not measure.

// ExtAreaEstimation quantifies the core premise of §3.2: how well a
// point set of size N estimates covered area, by generator family. The
// series report |point-set coverage estimate − fine-lattice estimate| in
// percentage points on a fixed random deployment, for N along the x
// axis.
func ExtAreaEstimation(cfg Config) Figure {
	ns := []float64{250, 500, 1000, 2000, 4000}
	fig := Figure{
		ID: "ext-area", Title: "Area-estimation error of the field approximation",
		XLabel: "points N", YLabel: "abs error vs lattice (pct points)",
	}
	field := cfg.Field()
	// One fixed partial deployment per run, shared by every generator.
	for _, genName := range []string{"halton", "hammersley", "sobol", "uniform"} {
		ys := make([]float64, len(ns))
		for i, nf := range ns {
			vals := make([]float64, 0, cfg.Runs)
			for run := 0; run < cfg.Runs; run++ {
				gen, err := lowdisc.ByName(genName, cfg.Seed+uint64(run))
				if err != nil {
					panic(err)
				}
				pts := gen.Points(int(nf), field)
				m := coverage.New(field, pts, cfg.Rs, 1)
				r := rng.New(cfg.Seed + uint64(run)*1000003)
				for id := 0; id < cfg.InitialSensors; id++ {
					m.AddSensor(id, r.PointInRect(field))
				}
				pointEst := m.CoverageFrac(1)
				latticeEst := percover.LatticeCoverageFrac(m, 1, 200)
				vals = append(vals, 100*math.Abs(pointEst-latticeEst))
			}
			ys[i] = stats.Mean(vals)
		}
		fig.Series = append(fig.Series, Series{Label: genName, X: ns, Y: ys})
	}
	return fig
}

// ExtCellSizeSweep extends Fig. 8/10 beyond the paper's two grid cell
// sizes, exposing the placement-quality vs message-cost trade-off.
func ExtCellSizeSweep(cfg Config) Figure {
	const k = 3
	cells := []float64{4, 5, 8, 10, 20}
	xs := cells
	fig := Figure{
		ID: "ext-cell", Title: "Grid cell-size sweep (k=3)",
		XLabel: "cell size", YLabel: "nodes placed / messages per cell",
	}
	placed := make([]float64, len(cells))
	msgs := make([]float64, len(cells))
	for i, cell := range cells {
		pv := make([]float64, 0, cfg.Runs)
		mv := make([]float64, 0, cfg.Runs)
		for run := 0; run < cfg.Runs; run++ {
			m := cfg.NewMap(k, run)
			res := (core.GridDECOR{CellSize: cell}).Deploy(m, cfg.DeployRNG(run), core.Options{})
			pv = append(pv, float64(res.NumPlaced()))
			mv = append(mv, res.MessagesPerCell())
		}
		placed[i] = stats.Mean(pv)
		msgs[i] = stats.Mean(mv)
	}
	fig.Series = append(fig.Series,
		Series{Label: "nodes-placed", X: xs, Y: placed},
		Series{Label: "messages-per-cell", X: xs, Y: msgs},
	)
	return fig
}

// ExtGeneratorSweep re-runs the Fig. 8 node-count sweep with each point
// generator as the field approximation — the paper's "Hammersley results
// were similar" claim, measured.
func ExtGeneratorSweep(cfg Config) Figure {
	ks := kRange()
	fig := Figure{
		ID: "ext-gen", Title: "Nodes needed vs k, by field-approximation generator (centralized)",
		XLabel: "k", YLabel: "nodes placed for 100% coverage",
	}
	for _, genName := range []string{"halton", "hammersley", "sobol", "faure", "halton-scrambled", "jittered", "lhs", "uniform"} {
		ys := make([]float64, len(ks))
		for i, kf := range ks {
			vals := make([]float64, 0, cfg.Runs)
			for run := 0; run < cfg.Runs; run++ {
				genCfg := cfg
				genCfg.Generator = genName
				genCfg.Seed = cfg.Seed + uint64(run)
				m := genCfg.NewMap(int(kf), run)
				res := (core.Centralized{}).Deploy(m, cfg.DeployRNG(run), core.Options{})
				vals = append(vals, float64(res.NumPlaced()))
			}
			ys[i] = stats.Mean(vals)
		}
		fig.Series = append(fig.Series, Series{Label: genName, X: ks, Y: ys})
	}
	return fig
}

// ExtCorrelatedFailures measures 1-coverage of k=3 deployments under
// geographically correlated cluster failures — the failure mode the
// paper's introduction warns about ("in practice, failures are
// correlated") but §4 only evaluates as a single disaster disc.
func ExtCorrelatedFailures(cfg Config) Figure {
	const k = 3
	xs := []float64{0, 1, 2, 4, 6, 8, 10}
	fig := Figure{
		ID: "ext-corr", Title: "1-coverage under correlated cluster failures (k=3)",
		XLabel: "failure clusters", YLabel: "percentage of covered points",
	}
	radius := cfg.FieldSide / 8
	for _, meth := range cfg.Methods() {
		var runs [][]float64
		for run := 0; run < cfg.Runs; run++ {
			m := cfg.NewMap(k, run)
			meth.Deploy(m, cfg.DeployRNG(run), core.Options{})
			ys := make([]float64, len(xs))
			for i, nc := range xs {
				sum := 0.0
				for d := 0; d < cfg.FailureDraws; d++ {
					model := failure.Correlated{Clusters: int(nc), Radius: radius, P: 0.9}
					ids := model.Select(m, cfg.failRNG(run, d))
					sum += coverageAfterFailure(m, ids, 1)
				}
				ys[i] = 100 * sum / float64(cfg.FailureDraws)
			}
			runs = append(runs, ys)
		}
		fig.Series = append(fig.Series, Series{Label: meth.Name(), X: xs, Y: stats.MeanSeries(runs)})
	}
	return fig
}

// ExtConnectivity validates the §2 corollary experimentally: with
// rc = 2·rs, a fully k-covered deployment yields a communication graph
// of vertex connectivity at least k. Runs on a reduced field because
// exact vertex connectivity is expensive.
func ExtConnectivity(cfg Config) Figure {
	small := cfg
	small.FieldSide = math.Min(cfg.FieldSide, 30)
	small.NumPoints = minInt(cfg.NumPoints, 200)
	small.InitialSensors = minInt(cfg.InitialSensors, 20)
	ks := kRange()
	fig := Figure{
		ID: "ext-conn", Title: "Vertex connectivity of k-covered deployments (rc = 2rs)",
		XLabel: "k", YLabel: "vertex connectivity",
	}
	for _, meth := range []core.Method{core.Centralized{}, core.VoronoiDECOR{Rc: 2 * small.Rs}} {
		ys := make([]float64, len(ks))
		for i, kf := range ks {
			vals := make([]float64, 0, small.Runs)
			for run := 0; run < small.Runs; run++ {
				m := small.NewMap(int(kf), run)
				meth.Deploy(m, small.DeployRNG(run), core.Options{})
				net := network.New(m.Field())
				for _, id := range m.SensorIDs() {
					p, _ := m.SensorPos(id)
					net.Add(id, p, small.Rs, 2*small.Rs)
				}
				vals = append(vals, float64(net.VertexConnectivity()))
			}
			ys[i] = stats.Mean(vals)
		}
		fig.Series = append(fig.Series, Series{Label: meth.Name(), X: ks, Y: ys})
	}
	return fig
}

// ExtEnergy reports the total radio energy (millijoules) each DECOR
// variant spends on deployment messages, under the first-order radio
// model the paper cites for leader rotation.
func ExtEnergy(cfg Config) Figure {
	ks := kRange()
	model := energy.Default()
	fig := Figure{
		ID: "ext-energy", Title: "Deployment radio energy by method",
		XLabel: "k", YLabel: "energy (mJ)",
	}
	for _, meth := range cfg.DecorMethods() {
		rc := 2 * cfg.Rs
		if v, ok := meth.(core.VoronoiDECOR); ok {
			rc = v.Rc
		}
		ys := make([]float64, len(ks))
		for i, kf := range ks {
			vals := make([]float64, 0, cfg.Runs)
			for run := 0; run < cfg.Runs; run++ {
				m := cfg.NewMap(int(kf), run)
				res := meth.Deploy(m, cfg.DeployRNG(run), core.Options{})
				_, total := energy.DeploymentCost(m, res, model, rc)
				vals = append(vals, total*1e3)
			}
			ys[i] = stats.Mean(vals)
		}
		fig.Series = append(fig.Series, Series{Label: meth.Name(), X: ks, Y: ys})
	}
	return fig
}

// ExtReliability compares the paper's §2.1 analytic survival model
// (1 − q^k per point, exact binomial tails via reliability.Analyze)
// against the deployed fields: expected fraction of 1-covered points
// after i.i.d. failures with probability q, for k=3 deployments.
func ExtReliability(cfg Config) Figure {
	const k = 3
	qs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	fig := Figure{
		ID: "ext-rel", Title: "Analytic expected 1-coverage vs sensor failure probability (k=3)",
		XLabel: "failure probability q", YLabel: "expected percentage of covered points",
	}
	// The idealized model: every point covered exactly k times.
	ideal := make([]float64, len(qs))
	for i, q := range qs {
		ideal[i] = 100 * reliability.PointReliability(k, q)
	}
	fig.Series = append(fig.Series, Series{Label: "ideal-1-q^k", X: qs, Y: ideal})
	for _, meth := range cfg.Methods() {
		var runs [][]float64
		for run := 0; run < cfg.Runs; run++ {
			m := cfg.NewMap(k, run)
			meth.Deploy(m, cfg.DeployRNG(run), core.Options{})
			ys := make([]float64, len(qs))
			for i, q := range qs {
				ys[i] = 100 * reliability.Analyze(m, q).ExpectedCovered
			}
			runs = append(runs, ys)
		}
		fig.Series = append(fig.Series, Series{Label: meth.Name(), X: qs, Y: stats.MeanSeries(runs)})
	}
	return fig
}

// ExtHops validates the paper's choice of rc = 10·√2 for the grid
// scheme: at that radius adjacent 5×5-cell leaders are always direct
// neighbors ("without the need of any routing mechanism"), while at
// rc = 2·rs = 8 inter-leader messages may need relaying. The series
// report the mean hop distance between Moore-adjacent occupied-cell
// leaders after a grid-small deployment.
func ExtHops(cfg Config) Figure {
	ks := kRange()
	fig := Figure{
		ID: "ext-hops", Title: "Inter-leader hop distance after grid-small deployment",
		XLabel: "k", YLabel: "mean hops between adjacent-cell leaders",
	}
	cellSize := 5.0
	for _, rc := range []float64{2 * cfg.Rs, cellSize * 2 * math.Sqrt2} {
		label := fmt.Sprintf("rc=%.2f", rc)
		ys := make([]float64, len(ks))
		for i, kf := range ks {
			vals := make([]float64, 0, cfg.Runs)
			for run := 0; run < cfg.Runs; run++ {
				m := cfg.NewMap(int(kf), run)
				(core.GridDECOR{CellSize: cellSize}).Deploy(m, cfg.DeployRNG(run), core.Options{})
				net := network.New(m.Field())
				part := partitionGrid(m, cellSize)
				leaders := map[int]int{} // cell -> lowest sensor ID
				for _, id := range m.SensorIDs() {
					p, _ := m.SensorPos(id)
					net.Add(id, p, cfg.Rs, rc)
					c := part.CellIndex(p)
					if cur, ok := leaders[c]; !ok || id < cur {
						leaders[c] = id
					}
				}
				var pairs [][2]int
				for c, l := range leaders {
					for _, nc := range part.Neighbors(c) {
						if nl, ok := leaders[nc]; ok && nc > c {
							pairs = append(pairs, [2]int{l, nl})
						}
					}
				}
				if mean, reach := net.AverageHopDistance(pairs); reach > 0 {
					vals = append(vals, mean)
				}
			}
			ys[i] = stats.Mean(vals)
		}
		fig.Series = append(fig.Series, Series{Label: label, X: ks, Y: ys})
	}
	return fig
}

func partitionGrid(m *coverage.Map, cellSize float64) *partition.Grid {
	return partition.NewGrid(m.Field(), cellSize)
}

// ExtByID dispatches the extension experiments.
func ExtByID(id string, cfg Config) (Figure, error) {
	switch id {
	case "ext-area":
		return ExtAreaEstimation(cfg), nil
	case "ext-cell":
		return ExtCellSizeSweep(cfg), nil
	case "ext-gen":
		return ExtGeneratorSweep(cfg), nil
	case "ext-corr":
		return ExtCorrelatedFailures(cfg), nil
	case "ext-conn":
		return ExtConnectivity(cfg), nil
	case "ext-energy":
		return ExtEnergy(cfg), nil
	case "ext-rel":
		return ExtReliability(cfg), nil
	case "ext-hops":
		return ExtHops(cfg), nil
	case "ext-async":
		return ExtAsync(cfg), nil
	case "ext-loc":
		return ExtLocalization(cfg), nil
	case "ext-robot":
		return ExtRobot(cfg), nil
	case "ext-heal":
		return ExtHealing(cfg), nil
	case "ext-relay":
		return ExtRelay(cfg), nil
	}
	return Figure{}, fmt.Errorf("experiment: unknown extension %q", id)
}

// ExtIDs lists the extension experiments.
func ExtIDs() []string {
	return []string{"ext-area", "ext-cell", "ext-gen", "ext-corr", "ext-conn", "ext-energy", "ext-rel", "ext-hops", "ext-async", "ext-loc", "ext-robot", "ext-heal", "ext-relay"}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

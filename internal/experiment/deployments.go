package experiment

import (
	"decor/internal/core"
	"decor/internal/metrics"
)

// Deployments runs each of the paper's six methods once at coverage
// requirement k on the run-0 field and returns their measured summaries —
// the machine-readable per-deployment form behind decor-bench
// -deployments/-json, complementing the averaged figure tables.
func Deployments(cfg Config, k int) []metrics.Deployment {
	methods := cfg.Methods()
	out := make([]metrics.Deployment, len(methods))
	cfg.forEachCell(len(methods), func(i int) {
		m := cfg.NewMap(k, 0)
		res := methods[i].Deploy(m, cfg.DeployRNG(0), core.Options{})
		out[i] = metrics.Collect(m, res)
	})
	return out
}

package experiment

import (
	"decor/internal/core"
	"decor/internal/geom"
	"decor/internal/localize"
	"decor/internal/network"
	"decor/internal/stats"
)

// ExtLocalization measures the DV-hop positioning substrate behind the
// paper's assumption that non-GPS nodes "are capable of finding out ...
// their respective positions using an algorithm": mean localization
// error (in units of rc) as a function of the number of GPS anchors, on
// a deployed DECOR field.
func ExtLocalization(cfg Config) Figure {
	anchorCounts := []float64{3, 4, 6, 8, 12, 16}
	fig := Figure{
		ID: "ext-loc", Title: "DV-hop localization error vs GPS anchors (k=3 deployment)",
		XLabel: "anchors", YLabel: "mean position error / rc",
	}
	for _, rc := range []float64{2 * cfg.Rs, 14.142135623730951} {
		label := "rc=8.00"
		if rc > 10 {
			label = "rc=14.14"
		}
		ys := make([]float64, len(anchorCounts))
		for i, ac := range anchorCounts {
			vals := make([]float64, 0, cfg.Runs)
			for run := 0; run < cfg.Runs; run++ {
				m := cfg.NewMap(3, run)
				(core.VoronoiDECOR{Rc: rc}).Deploy(m, cfg.DeployRNG(run), core.Options{})
				net := network.New(m.Field())
				ids := m.SensorIDs()
				for _, id := range ids {
					p, _ := m.SensorPos(id)
					net.Add(id, p, cfg.Rs, rc)
				}
				anchors := spreadAnchors(m.Field(), net, ids, int(ac))
				res, err := localize.DVHop(net, anchors)
				if err != nil {
					continue
				}
				_, perRc := localize.EvaluateAccuracy(net, &res)
				if len(res.Estimates) > 0 {
					vals = append(vals, perRc)
				}
			}
			ys[i] = stats.Mean(vals)
		}
		fig.Series = append(fig.Series, Series{Label: label, X: anchorCounts, Y: ys})
	}
	return fig
}

// spreadAnchors picks n sensors nearest to a jittered grid of target
// positions, giving well-spread anchor geometry.
func spreadAnchors(field geom.Rect, net *network.Network, ids []int, n int) []int {
	cols := 1
	for cols*cols < n {
		cols++
	}
	var anchors []int
	taken := map[int]bool{}
	for i := 0; i < n; i++ {
		cx := i % cols
		cy := i / cols
		target := geom.Point{
			X: field.Min.X + (float64(cx)+0.5)/float64(cols)*field.W(),
			Y: field.Min.Y + (float64(cy)+0.5)/float64(cols)*field.H(),
		}
		best, bestD := -1, 0.0
		for _, id := range ids {
			if taken[id] {
				continue
			}
			d := net.Node(id).Pos.Dist2(target)
			if best < 0 || d < bestD {
				best, bestD = id, d
			}
		}
		if best >= 0 {
			taken[best] = true
			anchors = append(anchors, best)
		}
	}
	return anchors
}

package experiment

import (
	"strings"
	"testing"
)

// The repository's headline regression test: the paper's quantitative
// claims must keep reproducing. Single-run full-scale configuration to
// stay fast; the tolerance slack absorbs the reduced averaging.
func TestSummaryClaimsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale summary skipped in -short mode")
	}
	cfg := Default()
	cfg.Runs = 1
	cfg.FailureDraws = 3
	claims := Summary(cfg)
	if len(claims) != 10 {
		t.Fatalf("claims = %d, want 10", len(claims))
	}
	failed := 0
	for _, c := range claims {
		if !c.Pass {
			failed++
			t.Logf("claim out of tolerance: %s (paper %g, measured %g)",
				c.Label, c.Paper, c.Measured)
		}
	}
	// With a single run a little noise is expected; at most one claim
	// may drift out of tolerance.
	if failed > 1 {
		t.Errorf("%d/10 paper claims out of tolerance", failed)
	}
}

func TestSummaryTableFormat(t *testing.T) {
	claims := []Claim{
		{Label: "a", Paper: 100, Measured: 105, RelTol: 0.1, Pass: true},
		{Label: "b", Paper: 100, Measured: 300, RelTol: 0.1, Pass: false},
	}
	out := SummaryTable(claims)
	if !strings.Contains(out, "1/2 claims within tolerance") {
		t.Errorf("pass count missing:\n%s", out)
	}
	if !strings.Contains(out, "ok") || !strings.Contains(out, "FAIL") {
		t.Errorf("verdicts missing:\n%s", out)
	}
}

package experiment

import (
	"fmt"
	"math"
	"strings"
)

// Claim is one quantitative statement from the paper's §4 checked
// against this reproduction.
type Claim struct {
	Label    string
	Paper    float64 // the paper's reported value
	Measured float64
	// RelTol is the accepted relative deviation for Pass (rankings and
	// factors are what the reproduction promises, not digits).
	RelTol float64
	Pass   bool
}

// Summary re-runs the experiments behind the paper's headline numbers
// and returns the claim-by-claim comparison printed in EXPERIMENTS.md.
func Summary(cfg Config) []Claim {
	var claims []Claim
	add := func(label string, paper, measured, relTol float64) {
		pass := false
		if paper != 0 {
			pass = math.Abs(measured-paper)/math.Abs(paper) <= relTol
		}
		claims = append(claims, Claim{Label: label, Paper: paper, Measured: measured, RelTol: relTol, Pass: pass})
	}

	fig8 := Fig8(cfg)
	at := func(fig Figure, label string, idx int) float64 {
		for _, s := range fig.Series {
			if s.Label == label {
				return s.Y[idx]
			}
		}
		return math.NaN()
	}
	// Paper §4.1: "for k = 4, the centralized approach is shown to
	// achieve k-coverage of the entire field using 788 nodes. Under the
	// Voronoi approach, DECOR can achieve the same coverage using as few
	// as 891 nodes ... Under the grid-based approach with a 5×5 cell,
	// the number of nodes required is 1196 nodes."
	add("fig8 k=4 centralized nodes (paper 788)", 788, at(fig8, "centralized", 3), 0.15)
	add("fig8 k=4 voronoi-big nodes (paper 891)", 891, at(fig8, "voronoi-big", 3), 0.15)
	add("fig8 k=4 grid-small nodes (paper 1196)", 1196, at(fig8, "grid-small", 3), 0.15)
	// Voronoi ≈ 13% above centralized.
	add("fig8 k=4 voronoi/centralized ratio (paper 1.13)",
		1.13, at(fig8, "voronoi-big", 3)/at(fig8, "centralized", 3), 0.10)

	// §4.1: random redundant nodes "1500 (when k = 1) to 3000 (when
	// k = 5)". Fig. 9 measures percentages; reconstruct counts.
	fig9 := Fig9(cfg)
	randomTotalK5 := at(fig8, "random", 4) + float64(cfg.InitialSensors)
	add("fig9 k=5 random redundant count (paper ~3000)",
		3000, at(fig9, "random", 4)/100*randomTotalK5, 0.25)

	// §4.2: "DECOR can withstand failures of up to 75% of the deployed
	// nodes and still cover 90% or more of the area" (k=5, Fig. 12).
	fig12 := Fig12(cfg)
	add("fig12 k=5 grid-small max failure pct (paper ~75)",
		75, at(fig12, "grid-small", 4), 0.15)

	// §4.2 Fig. 14 at k=5: centralized ~250, grid ~300/270, voronoi
	// ~270/250.
	fig14 := Fig14(cfg)
	add("fig14 k=5 centralized restore nodes (paper ~250)", 250, at(fig14, "centralized", 4), 0.2)
	add("fig14 k=5 grid-small restore nodes (paper ~300)", 300, at(fig14, "grid-small", 4), 0.2)
	add("fig14 k=5 grid-big restore nodes (paper ~270)", 270, at(fig14, "grid-big", 4), 0.2)
	add("fig14 k=5 voronoi-big restore nodes (paper ~250)", 250, at(fig14, "voronoi-big", 4), 0.2)

	return claims
}

// SummaryTable formats the claims as an aligned text table.
func SummaryTable(claims []Claim) string {
	var b strings.Builder
	b.WriteString("# paper-vs-measured summary\n")
	fmt.Fprintf(&b, "%-55s %10s %10s %8s %s\n", "claim", "paper", "measured", "tol", "verdict")
	pass := 0
	for _, c := range claims {
		verdict := "FAIL"
		if c.Pass {
			verdict = "ok"
			pass++
		}
		fmt.Fprintf(&b, "%-55s %10.4g %10.4g %7.0f%% %s\n",
			c.Label, c.Paper, c.Measured, 100*c.RelTol, verdict)
	}
	fmt.Fprintf(&b, "# %d/%d claims within tolerance\n", pass, len(claims))
	return b.String()
}

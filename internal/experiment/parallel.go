package experiment

import (
	"runtime"

	"decor/internal/coverage"
	"decor/internal/shard"
)

// The figure workloads are embarrassingly parallel: every (method, k, run)
// cell builds its own map from deterministic RNG streams (DeployRNG,
// failRNG, restoreRNG) and writes one indexed result slot. The shared
// pool in internal/shard fans those cells across goroutines; because each
// cell's inputs are derived only from (Config, cell index) and
// aggregation happens after the join in slot order, figure output is
// byte-identical for any worker count — the property
// TestParallelFiguresIdentical locks in.

// Workers resolves the effective worker count: Parallel when positive,
// otherwise GOMAXPROCS.
func (c Config) Workers() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// forEachCell executes job(0..n-1), fanning across Workers() goroutines.
// Jobs must be independent and write only to their own result slots. The
// call blocks until every job has finished.
func (c Config) forEachCell(n int, job func(i int)) {
	shard.ForEach(n, c.Workers(), job)
}

// failureEval answers "what fraction of points stays level-covered if
// these sensors fail?" repeatedly against one finished deployment. It
// precomputes each sensor's covered-point list once and reuses a counts
// scratch, so the failure-sweep inner loops (hundreds of draws per
// deployment in Figs. 11–12) do no spatial queries and no allocation.
// Not safe for concurrent use; each worker builds its own.
type failureEval struct {
	m         *coverage.Map
	base      []int       // live coverage counts, restored after each draw
	levelBase map[int]int // level -> #points with base count >= level
	ids       []int       // the deployment's sensors, ascending (snapshot)
	covered   [][]int     // covered[j] = points within m.Rs() of ids[j]
	built     []bool
	touched   []int // scratch: covered-list indices applied this draw
}

func newFailureEval(m *coverage.Map) *failureEval {
	ids := m.SensorIDs()
	return &failureEval{
		m:       m,
		ids:     ids,
		covered: make([][]int, len(ids)),
		built:   make([]bool, len(ids)),
	}
}

// after returns the fraction of sample points that would still be covered
// by at least level sensors if the given sensors failed, without mutating
// the map. Matches the paper's accounting: every sensor subtracts
// coverage over the map's default sensing radius.
//
// Two properties keep a draw cheap: failure models return IDs ascending,
// so the lookup is a merge walk over the sensor snapshot (out-of-order
// inputs still work — the walk restarts); and the level count is tracked
// through the decrements (a point leaves the level exactly when its count
// drops from level to level-1) and the counts undone afterwards, so no
// draw rescans all sample points.
func (e *failureEval) after(failed []int, level int) float64 {
	m := e.m
	if e.base == nil {
		e.base = m.CountsInto(nil)
		e.levelBase = make(map[int]int)
	}
	n, ok := e.levelBase[level]
	if !ok {
		for _, c := range e.base {
			if c >= level {
				n++
			}
		}
		e.levelBase[level] = n
	}
	e.touched = e.touched[:0]
	j, prev := 0, -1
	for _, id := range failed {
		if id < prev {
			j = 0 // unsorted input: restart the walk
		}
		prev = id
		for j < len(e.ids) && e.ids[j] < id {
			j++
		}
		if j == len(e.ids) || e.ids[j] != id {
			continue // unknown or already-dead sensor: skip
		}
		if !e.built[j] {
			if p, live := m.SensorPos(id); live {
				e.covered[j] = m.AppendPointsInBall(nil, p, m.Rs())
			}
			e.built[j] = true
		}
		e.touched = append(e.touched, j)
		for _, i := range e.covered[j] {
			if e.base[i] == level {
				n--
			}
			e.base[i]--
		}
	}
	for _, t := range e.touched {
		for _, i := range e.covered[t] {
			e.base[i]++
		}
	}
	if len(e.base) == 0 {
		return 1
	}
	return float64(n) / float64(len(e.base))
}

// coverageAfterFailure is the one-shot form of failureEval.after, kept for
// callers that evaluate a single failure set per deployment.
func coverageAfterFailure(m *coverage.Map, failed []int, level int) float64 {
	return newFailureEval(m).after(failed, level)
}

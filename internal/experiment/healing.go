package experiment

import (
	"fmt"

	"decor/internal/core"
	"decor/internal/failure"
	"decor/internal/network"
	"decor/internal/protocol"
	"decor/internal/relay"
	"decor/internal/sim"
	"decor/internal/stats"
)

// ExtHealing measures the autonomous repair loop (§3.2 closed loop):
// after the area disaster, how many heartbeat periods until the
// monitored field detects the silence and fully restores k-coverage,
// for several timeout multipliers. Faster detection risks false
// positives under loss (see internal/protocol tests); this experiment
// shows the latency side of that trade-off.
func ExtHealing(cfg Config) Figure {
	ks := kRange()
	fig := Figure{
		ID: "ext-heal", Title: "Self-healing restoration latency (heartbeat periods)",
		XLabel: "k", YLabel: "Tc periods from failure to full coverage",
	}
	const tc = 10.0
	for _, mult := range []int{2, 3, 6} {
		label := fmt.Sprintf("timeout=%dxTc", mult)
		ys := make([]float64, len(ks))
		for i, kf := range ks {
			vals := make([]float64, 0, cfg.Runs)
			for run := 0; run < cfg.Runs; run++ {
				m := cfg.NewMap(int(kf), run)
				(core.Centralized{}).Deploy(m, cfg.DeployRNG(run), core.Options{})
				eng := sim.NewEngine(0.01)
				mon := protocol.NewMonitoredField(m, eng, 5, tc, mult)
				mon.Start()
				eng.Run(5 * tc)
				dead := (failure.Area{Disk: cfg.AreaFailureDisk()}).Select(m, nil)
				for _, id := range dead {
					mon.Fail(id)
				}
				failAt := eng.Now()
				for step := 0; step < 400; step++ {
					eng.Run(eng.Now() + tc)
					if len(mon.Repairs) > 0 && m.FullyCovered() {
						break
					}
				}
				if len(mon.Repairs) == 0 || !m.FullyCovered() {
					continue // healing incomplete: exclude (should not happen)
				}
				last := mon.Repairs[len(mon.Repairs)-1].Time
				vals = append(vals, float64(last-failAt)/tc)
			}
			ys[i] = stats.Mean(vals)
		}
		fig.Series = append(fig.Series, Series{Label: label, X: ks, Y: ys})
	}
	return fig
}

// ExtRelay measures connectivity repair when rc violates the §2 bound:
// deployments made for coverage but operated at rc = rs (the minimum the
// paper's model allows) can partition into radio islands; the series
// report the component count before repair and the relay nodes needed
// to reconnect, per k.
func ExtRelay(cfg Config) Figure {
	ks := kRange()
	rc := cfg.Rs // the rs <= rc minimum: far below the 2·rs bound
	fig := Figure{
		ID: "ext-relay", Title: "Connectivity repair below the rc >= 2rs bound (rc = rs)",
		XLabel: "k", YLabel: "components before / relays added",
	}
	comps := make([]float64, len(ks))
	relays := make([]float64, len(ks))
	for i, kf := range ks {
		cv := make([]float64, 0, cfg.Runs)
		rv := make([]float64, 0, cfg.Runs)
		for run := 0; run < cfg.Runs; run++ {
			m := cfg.NewMap(int(kf), run)
			(core.VoronoiDECOR{Rc: 2 * cfg.Rs}).Deploy(m, cfg.DeployRNG(run), core.Options{})
			net := network.New(m.Field())
			for _, id := range m.SensorIDs() {
				p, _ := m.SensorPos(id)
				net.Add(id, p, cfg.Rs, rc)
			}
			before := len(net.ConnectedComponents())
			res := relay.Connect(net, cfg.Rs, rc, 1<<20)
			cv = append(cv, float64(before))
			rv = append(rv, float64(len(res.Relays)))
		}
		comps[i] = stats.Mean(cv)
		relays[i] = stats.Mean(rv)
	}
	fig.Series = append(fig.Series,
		Series{Label: "components-before", X: ks, Y: comps},
		Series{Label: "relays-added", X: ks, Y: relays},
	)
	return fig
}

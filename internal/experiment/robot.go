package experiment

import (
	"decor/internal/core"
	"decor/internal/failure"
	"decor/internal/geom"
	"decor/internal/mobility"
	"decor/internal/stats"
)

// ExtRobot measures restoration *latency*: after the Fig. 14 disaster, a
// mobile robot (2 field-units/s, 30 s actuation per sensor) drives each
// method's proposed placements from the field corner. The series report
// the virtual time until 95% of the points are k-covered again — the
// metric a first-responder cares about, combining how many sensors a
// method asks for with how compactly it asks for them.
func ExtRobot(cfg Config) Figure {
	ks := kRange()
	const (
		speed     = 2.0
		placeTime = 30.0
	)
	fig := Figure{
		ID: "ext-robot", Title: "Robot restoration latency after the area failure",
		XLabel: "k", YLabel: "seconds until 95% k-coverage",
	}
	for _, meth := range cfg.Methods() {
		ys := make([]float64, len(ks))
		for i, kf := range ks {
			vals := make([]float64, 0, cfg.Runs)
			for run := 0; run < cfg.Runs; run++ {
				m := cfg.NewMap(int(kf), run)
				meth.Deploy(m, cfg.DeployRNG(run), core.Options{})
				ids := (failure.Area{Disk: cfg.AreaFailureDisk()}).Select(m, nil)
				failure.Apply(m, ids)
				// Plan the repair offline, actuate with travel time.
				plan := m.Clone()
				res := meth.Deploy(plan, cfg.restoreRNG(run), core.Options{})
				sites := make([]geom.Point, len(res.Placed))
				for j, pl := range res.Placed {
					sites[j] = pl.Pos
				}
				rr := mobility.Execute(m, sites, m.Field().Min, speed, placeTime)
				if tt, ok := rr.TimeToCoverage(0.95); ok {
					vals = append(vals, float64(tt))
				}
			}
			ys[i] = stats.Mean(vals)
		}
		fig.Series = append(fig.Series, Series{Label: meth.Name(), X: ks, Y: ys})
	}
	return fig
}

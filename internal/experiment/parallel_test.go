package experiment

import (
	"reflect"
	"sync/atomic"
	"testing"
)

func TestForEachCellCoversAllCells(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		cfg := Quick()
		cfg.Parallel = workers
		var hits [97]atomic.Int32
		cfg.forEachCell(len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: cell %d executed %d times", workers, i, got)
			}
		}
		// n == 0 must be a no-op, not a hang.
		cfg.forEachCell(0, func(i int) { t.Fatalf("job ran for n=0") })
	}
}

func TestWorkersResolution(t *testing.T) {
	cfg := Quick()
	if cfg.Workers() < 1 {
		t.Fatalf("default Workers() = %d, want >= 1", cfg.Workers())
	}
	cfg.Parallel = 7
	if cfg.Workers() != 7 {
		t.Fatalf("Workers() = %d, want 7", cfg.Workers())
	}
}

// The headline property: figure output is byte-identical for any worker
// count. Run under -race (make check does) this also proves the fan-out
// is data-race-free.
func TestParallelFiguresIdentical(t *testing.T) {
	cfg := Quick()
	cfg.Runs = 2
	for _, id := range []string{"fig8", "fig10", "fig11", "fig13"} {
		seq := cfg
		seq.Parallel = 1
		par := cfg
		par.Parallel = 4
		fseq, err := ByID(id, seq)
		if err != nil {
			t.Fatal(err)
		}
		fpar, err := ByID(id, par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fseq, fpar) {
			t.Errorf("%s: parallel output differs from sequential\nseq:\n%s\npar:\n%s",
				id, fseq.Table(), fpar.Table())
		}
	}
}

func TestParallelDeploymentsIdentical(t *testing.T) {
	seq := Quick()
	seq.Parallel = 1
	par := Quick()
	par.Parallel = 4
	a := Deployments(seq, 2)
	b := Deployments(par, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel Deployments differ from sequential")
	}
}

// failureEval must agree with a from-scratch evaluation, including dead
// sensors in the failed set and repeated reuse of the scratch.
func TestFailureEvalMatchesOneShot(t *testing.T) {
	cfg := Quick()
	m := cfg.NewMap(2, 0)
	eval := newFailureEval(m)
	ids := m.SensorIDs()
	sets := [][]int{
		nil,
		{ids[0]},
		ids[:len(ids)/2],
		append([]int{999999}, ids[:3]...), // unknown id is skipped
		ids,
	}
	for _, level := range []int{1, 2} {
		for si, failed := range sets {
			want := coverageAfterFailure(m, failed, level)
			if got := eval.after(failed, level); got != want {
				t.Fatalf("set %d level %d: eval %v, one-shot %v", si, level, got, want)
			}
		}
	}
}

// Package experiment regenerates every figure of the paper's evaluation
// (§4, Figures 7–14) plus the field illustrations (Figures 4–6). Each
// FigN function runs the corresponding workload — averaging Config.Runs
// randomly-seeded fields exactly as the paper averages 5 runs — and
// returns a Figure holding the same series the paper plots, renderable as
// an aligned text table.
package experiment

import (
	"fmt"
	"strings"
	"sync"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/index"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

// Config holds the paper's experimental parameters (§4 defaults).
type Config struct {
	FieldSide      float64 // 100
	NumPoints      int     // 2000 Halton points
	Rs             float64 // 4
	InitialSensors int     // up to 200 pre-deployed random sensors
	Runs           int     // 5 randomly generated fields per data point
	Seed           uint64  // base seed; run i derives Seed+i
	Generator      string  // field approximation: halton (paper), hammersley, ...
	// AreaFailureRadius is the disaster disc radius for Figs. 6, 13, 14.
	AreaFailureRadius float64 // 24 (≈17% of the area)
	// FailureDraws averages this many random failure samples per
	// deployment in Figs. 11–12.
	FailureDraws int
	// Parallel is the worker count for fanning independent
	// (method, k, run) cells across goroutines; 0 means GOMAXPROCS.
	// Results are byte-identical for any value (see parallel.go).
	Parallel int
	// Tiled switches coverage maps to the tiled uint8 count store and
	// the grid/centralized methods to their tile-parallel engines
	// (DESIGN.md §13). Figure output is byte-identical either way (the
	// experiment parity test asserts it); the point is million-point
	// fields, where the flat store stops fitting in cache.
	Tiled bool
	// PlaceWorkers is the within-placement worker count for the tiled
	// engines (0 = GOMAXPROCS, only meaningful with Tiled). Distinct
	// from Parallel, which fans whole experiment cells.
	PlaceWorkers int
	// MaxResidentTiles bounds materialized count pages per map
	// (0 = unlimited; only meaningful with Tiled).
	MaxResidentTiles int
}

// Default returns the paper's configuration.
func Default() Config {
	return Config{
		FieldSide:         100,
		NumPoints:         2000,
		Rs:                4,
		InitialSensors:    200,
		Runs:              5,
		Seed:              1,
		Generator:         "halton",
		AreaFailureRadius: 24,
		FailureDraws:      5,
	}
}

// Quick returns a scaled-down configuration for tests and smoke runs.
func Quick() Config {
	c := Default()
	c.FieldSide = 50
	c.NumPoints = 500
	c.InitialSensors = 50
	c.Runs = 2
	c.AreaFailureRadius = 12
	c.FailureDraws = 3
	return c
}

// Field returns the monitored rectangle.
func (c Config) Field() geom.Rect { return geom.Square(c.FieldSide) }

// Points returns the sample-point approximation of the field.
func (c Config) Points() []geom.Point {
	gen, err := lowdisc.ByName(c.Generator, c.Seed)
	if err != nil {
		panic(err) // configs are produced by Default/Quick or validated by callers
	}
	return gen.Points(c.NumPoints, c.Field())
}

// nbShare caches per-field work across experiment cells: every cell of
// a sweep samples the field with the same generator, seed, point count
// and bounds, so the sample-point set and the radius-keyed adjacency are
// built once per process and shared between all cells (and workers — the
// cache is concurrency-safe, its contents immutable; coverage.New copies
// the point slice it is given).
var nbShare sync.Map // nbShareKey -> *fieldCache

type nbShareKey struct {
	gen  string
	seed uint64
	n    int
	side float64
}

type fieldCache struct {
	nb   index.NeighborhoodCache
	once sync.Once
	pts  []geom.Point
	// proto holds the fully initialized pre-deployment map per (k, run):
	// every method of a sweep cell starts from the same initial random
	// scatter, so it is built once and cloned per method.
	mu    sync.Mutex
	proto map[protoKey]*coverage.Map
}

type protoKey struct {
	k, run, init int
	rs           float64
	tiled        bool
	maxResident  int
}

// NewMap builds the coverage map for requirement k and pre-deploys the
// initial random sensors for the given run index.
func (c Config) NewMap(k, run int) *coverage.Map {
	shared, _ := nbShare.LoadOrStore(
		nbShareKey{c.Generator, c.Seed, c.NumPoints, c.FieldSide},
		&fieldCache{})
	fc := shared.(*fieldCache)
	fc.once.Do(func() { fc.pts = c.Points() })
	pk := protoKey{k, run, c.InitialSensors, c.Rs, c.Tiled, c.MaxResidentTiles}
	fc.mu.Lock()
	proto := fc.proto[pk]
	if proto == nil {
		if c.Tiled {
			proto = coverage.NewTiled(c.Field(), fc.pts, c.Rs, k,
				coverage.TileOptions{MaxResidentTiles: c.MaxResidentTiles})
		} else {
			proto = coverage.New(c.Field(), fc.pts, c.Rs, k)
		}
		proto.ShareNeighborhoods(&fc.nb)
		r := rng.New(c.Seed + uint64(run)*1000003)
		for id := 0; id < c.InitialSensors; id++ {
			proto.AddSensor(id, r.PointInRect(c.Field()))
		}
		if fc.proto == nil {
			fc.proto = map[protoKey]*coverage.Map{}
		}
		fc.proto[pk] = proto
	}
	fc.mu.Unlock()
	return proto.Clone()
}

// DeployRNG returns the method RNG stream for a run.
func (c Config) DeployRNG(run int) *rng.RNG {
	return rng.New(c.Seed + uint64(run)*7777777 + 13)
}

// Methods returns the paper's six evaluated methods. With Tiled set,
// the grid and centralized methods get their tile-parallel engines
// enabled (placements are byte-identical; only the execution changes).
func (c Config) Methods() []core.Method {
	out := make([]core.Method, 0, 6)
	for _, name := range core.AllMethodNames() {
		m, err := core.MethodByName(name, c.Rs)
		if err != nil {
			panic(err)
		}
		if c.Tiled {
			w := c.PlaceWorkers
			if w == 0 {
				w = -1 // GridDECOR.Workers: negative = GOMAXPROCS, 0 = off
			}
			switch v := m.(type) {
			case core.GridDECOR:
				v.Workers = w
				m = v
			case core.Centralized:
				v.Workers = w
				m = v
			}
		}
		out = append(out, m)
	}
	return out
}

// DecorMethods returns only the four distributed DECOR variants
// (Fig. 10 and Fig. 12 plot those).
func (c Config) DecorMethods() []core.Method {
	var out []core.Method
	for _, m := range c.Methods() {
		switch m.(type) {
		case core.GridDECOR, core.VoronoiDECOR:
			out = append(out, m)
		}
	}
	return out
}

// Series is one plotted line: Y[i] is the value at X[i]. Err, when
// non-nil, holds the sample standard deviation across the averaged runs
// (the paper plots means of 5 runs without error bars; we keep the
// dispersion).
type Series struct {
	Label string
	X     []float64
	Y     []float64
	Err   []float64
}

// Figure is one reproduced paper figure.
type Figure struct {
	ID     string // "fig7" ... "fig14"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Table renders the figure as an aligned text table: the x column
// followed by one column per series. All series must share their X grid
// (the FigN constructors guarantee it).
func (f Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "# y: %s\n", f.YLabel)
	// Header.
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].X {
		fmt.Fprintf(&b, "%-14.4g", f.Series[0].X[i])
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %14.4g", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TableErr renders the figure like Table but with mean±std cells where
// the dispersion is known.
func (f Figure) TableErr() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "# y: %s (mean±std over runs)\n", f.YLabel)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %18s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].X {
		fmt.Fprintf(&b, "%-14.4g", f.Series[0].X[i])
		for _, s := range f.Series {
			if s.Err != nil {
				fmt.Fprintf(&b, " %12.4g±%-5.3g", s.Y[i], s.Err[i])
			} else {
				fmt.Fprintf(&b, " %18.4g", s.Y[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].X {
		fmt.Fprintf(&b, "%g", f.Series[0].X[i])
		for _, s := range f.Series {
			fmt.Fprintf(&b, ",%g", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ByID dispatches to the FigN runner for "fig4".."fig14" (figs 4–6 have
// no data series; see the render package for their pictures — ByID
// returns an error for them).
func ByID(id string, cfg Config) (Figure, error) {
	switch id {
	case "fig7":
		return Fig7(cfg), nil
	case "fig8":
		return Fig8(cfg), nil
	case "fig9":
		return Fig9(cfg), nil
	case "fig10":
		return Fig10(cfg), nil
	case "fig11":
		return Fig11(cfg), nil
	case "fig12":
		return Fig12(cfg), nil
	case "fig13":
		return Fig13(cfg), nil
	case "fig14":
		return Fig14(cfg), nil
	}
	return Figure{}, fmt.Errorf("experiment: unknown figure %q (fig7..fig14)", id)
}

// AllIDs lists the data figures in paper order.
func AllIDs() []string {
	return []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"}
}

package experiment

import (
	"testing"
)

func quickExt() Config {
	c := Quick()
	c.Runs = 1
	c.FailureDraws = 2
	return c
}

func TestExtAreaEstimationLowDiscrepancyWins(t *testing.T) {
	cfg := quickExt()
	f := ExtAreaEstimation(cfg)
	checkFigure(t, f, 4)
	byLabel := map[string][]float64{}
	for _, s := range f.Series {
		byLabel[s.Label] = s.Y
	}
	// At the largest N, every low-discrepancy family must beat uniform
	// random points as an area estimator.
	last := len(f.Series[0].X) - 1
	for _, name := range []string{"halton", "hammersley", "sobol"} {
		if byLabel[name][last] > byLabel["uniform"][last] {
			t.Errorf("%s error %v not below uniform %v at N=4000",
				name, byLabel[name][last], byLabel["uniform"][last])
		}
		// And the absolute error must be small (< 1.5 percentage point).
		if byLabel[name][last] > 1.5 {
			t.Errorf("%s error %v too large", name, byLabel[name][last])
		}
	}
}

func TestExtCellSizeSweepTradeOff(t *testing.T) {
	f := ExtCellSizeSweep(quickExt())
	checkFigure(t, f, 2)
	var placed, msgs []float64
	for _, s := range f.Series {
		switch s.Label {
		case "nodes-placed":
			placed = s.Y
		case "messages-per-cell":
			msgs = s.Y
		}
	}
	// Bigger cells -> better placement (fewer nodes) but more messages
	// per cell: check the endpoints of the sweep.
	n := len(placed)
	if placed[n-1] >= placed[0] {
		t.Errorf("placement did not improve with cell size: %v", placed)
	}
	if msgs[n-1] <= msgs[0] {
		t.Errorf("messages did not grow with cell size: %v", msgs)
	}
}

func TestExtGeneratorSweepSimilarity(t *testing.T) {
	f := ExtGeneratorSweep(quickExt())
	checkFigure(t, f, 8)
	byLabel := map[string][]float64{}
	for _, s := range f.Series {
		byLabel[s.Label] = s.Y
	}
	// The paper: Hammersley "similar" to Halton. Allow 15% spread at
	// every k between the two.
	for i := range kRange() {
		h, hm := byLabel["halton"][i], byLabel["hammersley"][i]
		if diff := (h - hm) / h; diff > 0.15 || diff < -0.15 {
			t.Errorf("k=%d: halton %v vs hammersley %v diverge", i+1, h, hm)
		}
	}
}

func TestExtCorrelatedFailuresMonotone(t *testing.T) {
	f := ExtCorrelatedFailures(quickExt())
	checkFigure(t, f, 6)
	for _, s := range f.Series {
		if s.Y[0] < 99.9 {
			t.Errorf("%s: zero clusters should keep full coverage, got %v", s.Label, s.Y[0])
		}
		// Coverage decays (weakly, stochastic wobble allowed) with more
		// clusters.
		if s.Y[len(s.Y)-1] > s.Y[0] {
			t.Errorf("%s: coverage grew with clusters", s.Label)
		}
	}
}

func TestExtConnectivityCorollary(t *testing.T) {
	f := ExtConnectivity(quickExt())
	checkFigure(t, f, 2)
	for _, s := range f.Series {
		for i, k := range kRange() {
			if s.Y[i] < k {
				t.Errorf("%s: connectivity %v below k=%v violates the corollary",
					s.Label, s.Y[i], k)
			}
		}
	}
}

func TestExtEnergyGrowsWithRc(t *testing.T) {
	f := ExtEnergy(quickExt())
	checkFigure(t, f, 4)
	byLabel := map[string][]float64{}
	for _, s := range f.Series {
		byLabel[s.Label] = s.Y
	}
	for i := range kRange() {
		if byLabel["voronoi-big"][i] <= byLabel["voronoi-small"][i] {
			t.Errorf("k=%d: big-rc energy not above small-rc", i+1)
		}
		for name, ys := range byLabel {
			if ys[i] <= 0 {
				t.Errorf("k=%d: %s spent no energy", i+1, name)
			}
		}
	}
}

func TestExtReliabilityBounds(t *testing.T) {
	f := ExtReliability(quickExt())
	checkFigure(t, f, 7)
	byLabel := map[string][]float64{}
	for _, s := range f.Series {
		byLabel[s.Label] = s.Y
	}
	ideal := byLabel["ideal-1-q^k"]
	for name, ys := range byLabel {
		if name == "ideal-1-q^k" {
			continue
		}
		for i := range ys {
			// Real deployments have points covered MORE than k times, so
			// they dominate the exactly-k ideal curve.
			if ys[i] < ideal[i]-1e-6 {
				t.Errorf("%s: expected coverage %v below ideal %v at q index %d",
					name, ys[i], ideal[i], i)
			}
			if ys[i] > 100+1e-9 {
				t.Errorf("%s: coverage > 100%%", name)
			}
		}
	}
	// q=0 means everything survives.
	for name, ys := range byLabel {
		if ys[0] < 99.999 {
			t.Errorf("%s: q=0 coverage = %v", name, ys[0])
		}
	}
}

func TestExtHopsValidatesRcChoice(t *testing.T) {
	f := ExtHops(quickExt())
	checkFigure(t, f, 2)
	var small, big []float64
	for _, s := range f.Series {
		if s.Label == "rc=14.14" {
			big = s.Y
		} else {
			small = s.Y
		}
	}
	for i := range kRange() {
		// At rc = 10√2 adjacent leaders are always 1 hop apart — the
		// paper's "no routing mechanism" claim.
		if big[i] != 1 {
			t.Errorf("k=%d: big-rc mean hops = %v, want exactly 1", i+1, big[i])
		}
		// At rc = 8 some leader pairs need relays.
		if small[i] < 1 {
			t.Errorf("k=%d: small-rc mean hops = %v below 1", i+1, small[i])
		}
	}
	// Relaying must actually occur for at least one k.
	any := false
	for _, v := range small {
		if v > 1.001 {
			any = true
		}
	}
	if !any {
		t.Error("small rc never required relaying — suspicious")
	}
}

func TestExtAsyncRegimes(t *testing.T) {
	f := ExtAsync(quickExt())
	checkFigure(t, f, 4)
	byLabel := map[string][]float64{}
	for _, s := range f.Series {
		byLabel[s.Label] = s.Y
	}
	for i := range kRange() {
		for _, scheme := range []string{"grid", "voronoi"} {
			round := byLabel[scheme+"-round"][i]
			event := byLabel[scheme+"-event"][i]
			if event <= 0 || round <= 0 {
				t.Fatalf("%s k=%d: zero placements", scheme, i+1)
			}
			// Same regime: within a factor of 2.5 of each other.
			if event > 2.5*round || round > 2.5*event {
				t.Errorf("%s k=%d: round %v vs event %v diverge", scheme, i+1, round, event)
			}
		}
	}
}

func TestExtLocalizationAccuracy(t *testing.T) {
	f := ExtLocalization(quickExt())
	checkFigure(t, f, 2)
	for _, s := range f.Series {
		// DV-hop on a dense DECOR field should localize well under one
		// rc at every anchor count, and improve from 3 anchors to 16.
		for i, v := range s.Y {
			if v <= 0 || v > 1.2 {
				t.Errorf("%s: error/rc = %v at %v anchors", s.Label, v, s.X[i])
			}
		}
		if s.Y[len(s.Y)-1] >= s.Y[0] {
			t.Errorf("%s: more anchors did not improve accuracy (%v -> %v)",
				s.Label, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

func TestExtRobotLatency(t *testing.T) {
	f := ExtRobot(quickExt())
	checkFigure(t, f, 6)
	byLabel := map[string][]float64{}
	for _, s := range f.Series {
		byLabel[s.Label] = s.Y
	}
	for i := range kRange() {
		// Random placement scatters repairs across the whole field: its
		// restoration latency must dwarf every informed method's.
		for _, name := range []string{"centralized", "voronoi-small", "voronoi-big", "grid-small", "grid-big"} {
			if byLabel[name][i] <= 0 {
				t.Fatalf("%s k=%d: zero latency", name, i+1)
			}
			if byLabel["random"][i] < 2*byLabel[name][i] {
				t.Errorf("k=%d: random latency %v not well above %s %v",
					i+1, byLabel["random"][i], name, byLabel[name][i])
			}
		}
	}
	// Latency grows with k for the informed methods (more sensors to
	// place).
	for _, name := range []string{"centralized", "voronoi-big"} {
		ys := byLabel[name]
		if ys[4] <= ys[0] {
			t.Errorf("%s: latency did not grow with k: %v", name, ys)
		}
	}
}

func TestExtHealingLatency(t *testing.T) {
	f := ExtHealing(quickExt())
	checkFigure(t, f, 3)
	byLabel := map[string][]float64{}
	for _, s := range f.Series {
		byLabel[s.Label] = s.Y
	}
	for i := range kRange() {
		a := byLabel["timeout=2xTc"][i]
		b := byLabel["timeout=3xTc"][i]
		c := byLabel["timeout=6xTc"][i]
		if a <= 0 || b <= 0 || c <= 0 {
			t.Fatalf("k=%d: healing never completed", i+1)
		}
		// A more patient detector heals strictly later.
		if !(a < b && b < c) {
			t.Errorf("k=%d: latency not ordered by timeout: %v %v %v", i+1, a, b, c)
		}
		// The timeout gap dominates: c - a ≈ 4 periods.
		if diff := c - a; diff < 3 || diff > 5 {
			t.Errorf("k=%d: timeout delta %v, want ~4 periods", i+1, diff)
		}
	}
}

func TestExtRelayFragmentation(t *testing.T) {
	f := ExtRelay(quickExt())
	checkFigure(t, f, 2)
	var comps, relays []float64
	for _, s := range f.Series {
		switch s.Label {
		case "components-before":
			comps = s.Y
		case "relays-added":
			relays = s.Y
		}
	}
	// Sparse low-k deployments fragment at rc = rs; density reconnects
	// as k grows.
	if comps[0] < 2 {
		t.Errorf("k=1 should fragment at rc=rs, got %v components", comps[0])
	}
	if comps[len(comps)-1] > comps[0] {
		t.Errorf("fragmentation should shrink with k: %v", comps)
	}
	for i := range comps {
		// A fragmented network needs relays (a single relay can merge
		// several islands at once, so no tighter count bound holds).
		if comps[i] > 1 && relays[i] < 1 {
			t.Errorf("k=%d: fragmented (%v components) but no relays added", i+1, comps[i])
		}
		if comps[i] == 1 && relays[i] != 0 {
			t.Errorf("k=%d: relays added to a connected network", i+1)
		}
	}
}

func TestExtByIDAndIDs(t *testing.T) {
	cfg := quickExt()
	for _, id := range ExtIDs() {
		// Just dispatch validity — individual behaviors covered above.
		if id == "ext-area" || id == "ext-gen" || id == "ext-conn" {
			continue // slower runners already executed in their own tests
		}
		f, err := ExtByID(id, cfg)
		if err != nil {
			t.Fatalf("ExtByID(%s): %v", id, err)
		}
		if f.ID != id {
			t.Errorf("ExtByID(%s).ID = %s", id, f.ID)
		}
	}
	if _, err := ExtByID("ext-nope", cfg); err == nil {
		t.Error("unknown extension should error")
	}
}

package experiment

import (
	"strings"
	"testing"
)

func TestConfigDefaultsMatchPaper(t *testing.T) {
	c := Default()
	if c.FieldSide != 100 || c.NumPoints != 2000 || c.Rs != 4 ||
		c.InitialSensors != 200 || c.Runs != 5 || c.AreaFailureRadius != 24 {
		t.Errorf("default config deviates from the paper: %+v", c)
	}
	if c.Generator != "halton" {
		t.Errorf("generator = %q", c.Generator)
	}
	// The disaster disc covers ≈17% of the area (paper §4.2).
	frac := c.AreaFailureDisk().Area() / (c.FieldSide * c.FieldSide)
	if frac < 0.15 || frac > 0.20 {
		t.Errorf("area failure fraction = %v", frac)
	}
}

func TestNewMapReproducible(t *testing.T) {
	c := Quick()
	a := c.NewMap(2, 1)
	b := c.NewMap(2, 1)
	if a.NumSensors() != b.NumSensors() {
		t.Fatal("initial sensor count differs")
	}
	for _, id := range a.SensorIDs() {
		pa, _ := a.SensorPos(id)
		pb, _ := b.SensorPos(id)
		if !pa.Eq(pb) {
			t.Fatal("initial sensors differ between identical configs")
		}
	}
	// Different runs differ.
	d := c.NewMap(2, 2)
	same := true
	for _, id := range a.SensorIDs() {
		pa, _ := a.SensorPos(id)
		pd, _ := d.SensorPos(id)
		if !pa.Eq(pd) {
			same = false
		}
	}
	if same {
		t.Error("different runs produced identical fields")
	}
}

func TestMethodsLists(t *testing.T) {
	c := Quick()
	if got := len(c.Methods()); got != 6 {
		t.Errorf("Methods = %d, want 6", got)
	}
	if got := len(c.DecorMethods()); got != 4 {
		t.Errorf("DecorMethods = %d, want 4", got)
	}
}

func checkFigure(t *testing.T, f Figure, wantSeries int) {
	t.Helper()
	if len(f.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", f.ID, len(f.Series), wantSeries)
	}
	n := len(f.Series[0].X)
	for _, s := range f.Series {
		if len(s.X) != n || len(s.Y) != n {
			t.Fatalf("%s/%s: ragged series", f.ID, s.Label)
		}
	}
	tbl := f.Table()
	if !strings.Contains(tbl, f.ID) {
		t.Errorf("%s: table missing figure id", f.ID)
	}
	csv := f.CSV()
	if lines := strings.Count(csv, "\n"); lines != n+1 {
		t.Errorf("%s: csv has %d lines, want %d", f.ID, lines, n+1)
	}
}

func TestFig7ShapesAndMonotonicity(t *testing.T) {
	f := Fig7(Quick())
	checkFigure(t, f, 6)
	for _, s := range f.Series {
		last := -1.0
		for i, y := range s.Y {
			if y < last-1e-9 {
				t.Errorf("fig7/%s: coverage decreased at x=%v", s.Label, s.X[i])
			}
			last = y
			if y < 0 || y > 100 {
				t.Errorf("fig7/%s: coverage %v out of range", s.Label, y)
			}
		}
		// All informed methods must reach 100% within the axis range.
		if s.Label != "random" && s.Y[len(s.Y)-1] < 99.9 {
			t.Errorf("fig7/%s: final coverage %v < 100", s.Label, s.Y[len(s.Y)-1])
		}
	}
	// The centralized curve must dominate every distributed variant at
	// the midpoint of the axis (it is the efficiency ceiling).
	byLabel := map[string][]float64{}
	for _, s := range f.Series {
		byLabel[s.Label] = s.Y
	}
	mid := len(f.Series[0].X) / 3
	for _, name := range []string{"grid-small", "grid-big", "voronoi-small", "voronoi-big", "random"} {
		if byLabel[name][mid] > byLabel["centralized"][mid]+1e-9 {
			t.Errorf("fig7: %s (%f) above centralized (%f) at x=%v",
				name, byLabel[name][mid], byLabel["centralized"][mid], f.Series[0].X[mid])
		}
	}
}

func TestFig8Ordering(t *testing.T) {
	f := Fig8(Quick())
	checkFigure(t, f, 6)
	byLabel := map[string][]float64{}
	for _, s := range f.Series {
		byLabel[s.Label] = s.Y
	}
	for i := range kRange() {
		cent := byLabel["centralized"][i]
		rnd := byLabel["random"][i]
		if rnd < 1.5*cent {
			t.Errorf("fig8 k=%d: random (%v) should need far more than centralized (%v)", i+1, rnd, cent)
		}
		for _, name := range []string{"grid-small", "grid-big", "voronoi-small", "voronoi-big"} {
			v := byLabel[name][i]
			if v < cent-1e-9 {
				t.Errorf("fig8 k=%d: %s (%v) below centralized (%v)", i+1, name, v, cent)
			}
			if v > rnd {
				t.Errorf("fig8 k=%d: %s (%v) above random (%v)", i+1, name, v, rnd)
			}
		}
		// Node demand grows with k for every method.
		if i > 0 {
			for name, ys := range byLabel {
				if ys[i] < ys[i-1]-1e-9 {
					t.Errorf("fig8: %s not monotone in k (%v -> %v)", name, ys[i-1], ys[i])
				}
			}
		}
	}
}

func TestFig9RandomWastesMost(t *testing.T) {
	f := Fig9(Quick())
	checkFigure(t, f, 6)
	byLabel := map[string][]float64{}
	for _, s := range f.Series {
		byLabel[s.Label] = s.Y
	}
	for i := range kRange() {
		if byLabel["random"][i] < 30 {
			t.Errorf("fig9 k=%d: random redundancy %v%% suspiciously low", i+1, byLabel["random"][i])
		}
		if byLabel["centralized"][i] > 25 {
			t.Errorf("fig9 k=%d: centralized redundancy %v%% too high", i+1, byLabel["centralized"][i])
		}
		for _, name := range []string{"grid-small", "grid-big", "voronoi-small", "voronoi-big"} {
			if byLabel[name][i] >= byLabel["random"][i] {
				t.Errorf("fig9 k=%d: %s redundancy not below random", i+1, name)
			}
		}
	}
}

func TestFig10MessageOverhead(t *testing.T) {
	f := Fig10(Quick())
	checkFigure(t, f, 4)
	byLabel := map[string][]float64{}
	for _, s := range f.Series {
		byLabel[s.Label] = s.Y
	}
	for i := range kRange() {
		// The paper: messages grow with cell size and with rc.
		if byLabel["grid-big"][i] <= byLabel["grid-small"][i] {
			t.Errorf("fig10 k=%d: grid-big (%v) not above grid-small (%v)",
				i+1, byLabel["grid-big"][i], byLabel["grid-small"][i])
		}
		if byLabel["voronoi-big"][i] <= byLabel["voronoi-small"][i] {
			t.Errorf("fig10 k=%d: voronoi-big (%v) not above voronoi-small (%v)",
				i+1, byLabel["voronoi-big"][i], byLabel["voronoi-small"][i])
		}
		for name, ys := range byLabel {
			if ys[i] <= 0 {
				t.Errorf("fig10 k=%d: %s sent no messages", i+1, name)
			}
		}
	}
}

func TestFig11FailureResilience(t *testing.T) {
	f := Fig11(Quick())
	checkFigure(t, f, 6)
	for _, s := range f.Series {
		if s.Y[0] < 99.9 {
			t.Errorf("fig11/%s: 0%% failures should keep full coverage, got %v", s.Label, s.Y[0])
		}
		// Coverage decays (weakly) with the failure fraction.
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+0.5 {
				t.Errorf("fig11/%s: coverage increased with more failures", s.Label)
			}
		}
		// A k=3 deployment tolerates 30% random failures gracefully
		// (paper: well above 90% 1-coverage).
		if last := s.Y[len(s.Y)-1]; last < 90 {
			t.Errorf("fig11/%s: coverage at 30%% failures = %v, want >= 90", s.Label, last)
		}
	}
}

func TestFig12MoreKMoreTolerance(t *testing.T) {
	cfg := Quick()
	f := Fig12(cfg)
	checkFigure(t, f, 6)
	for _, s := range f.Series {
		if s.Y[0] < 0 || s.Y[len(s.Y)-1] > 100 {
			t.Errorf("fig12/%s: out of range %v", s.Label, s.Y)
		}
		// Tolerance must grow substantially from k=1 to k=5.
		if s.Y[4] < s.Y[0] {
			t.Errorf("fig12/%s: tolerance shrank with k: %v", s.Label, s.Y)
		}
		// Paper: for k >= 2, 1-coverage of 90% survives 30% failures.
		if s.Y[1] < 30 {
			t.Errorf("fig12/%s: k=2 tolerance %v < 30%%", s.Label, s.Y[1])
		}
	}
}

func TestFig13MethodIndependent(t *testing.T) {
	cfg := Quick()
	f := Fig13(cfg)
	checkFigure(t, f, 6)
	// The disaster destroys the same region for everyone: all methods
	// lose a similar fraction (paper: "the percentage of k-covered points
	// is the same for all deployment algorithms").
	for i := range kRange() {
		lo, hi := 101.0, -1.0
		for _, s := range f.Series {
			if s.Y[i] < lo {
				lo = s.Y[i]
			}
			if s.Y[i] > hi {
				hi = s.Y[i]
			}
		}
		if hi-lo > 12 {
			t.Errorf("fig13 k=%d: methods diverge too much (%v..%v)", i+1, lo, hi)
		}
		// The disc is ~18% of the test field: coverage should drop to
		// roughly 75–95%.
		if lo < 60 || hi > 99 {
			t.Errorf("fig13 k=%d: implausible range %v..%v", i+1, lo, hi)
		}
	}
}

func TestFig14RestorationCost(t *testing.T) {
	cfg := Quick()
	f := Fig14(cfg)
	checkFigure(t, f, 6)
	byLabel := map[string][]float64{}
	for _, s := range f.Series {
		byLabel[s.Label] = s.Y
	}
	for i := range kRange() {
		cent := byLabel["centralized"][i]
		if cent <= 0 {
			t.Errorf("fig14 k=%d: centralized restored with zero nodes", i+1)
		}
		if byLabel["random"][i] < cent {
			t.Errorf("fig14 k=%d: random cheaper than centralized", i+1)
		}
	}
	// Restoration cost grows with k for the informed methods.
	for _, name := range []string{"centralized", "voronoi-small", "voronoi-big"} {
		ys := byLabel[name]
		if ys[4] <= ys[0] {
			t.Errorf("fig14/%s: cost did not grow with k: %v", name, ys)
		}
	}
}

func TestByIDAndAllIDs(t *testing.T) {
	cfg := Quick()
	cfg.Runs = 1
	for _, id := range AllIDs() {
		f, err := ByID(id, cfg)
		if err != nil {
			t.Fatalf("ByID(%s): %v", id, err)
		}
		if f.ID != id {
			t.Errorf("ByID(%s).ID = %s", id, f.ID)
		}
	}
	if _, err := ByID("fig99", cfg); err == nil {
		t.Error("unknown figure should error")
	}
	if _, err := ByID("fig5", cfg); err == nil {
		t.Error("illustration figures have no data series")
	}
}

func TestTableErrShowsDispersion(t *testing.T) {
	f := Fig8(Quick())
	out := f.TableErr()
	if !strings.Contains(out, "±") {
		t.Errorf("TableErr missing dispersion markers:\n%s", out)
	}
	if !strings.Contains(out, "mean±std") {
		t.Error("TableErr missing legend")
	}
	// Series without Err render their data rows plainly (the legend
	// always mentions mean±std).
	plain := Figure{ID: "x", Series: []Series{{Label: "a", X: []float64{1}, Y: []float64{2}}}}
	lines := strings.Split(plain.TableErr(), "\n")
	for _, l := range lines {
		if !strings.HasPrefix(l, "#") && strings.Contains(l, "±") {
			t.Errorf("plain data row shows ±: %q", l)
		}
	}
}

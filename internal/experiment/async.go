package experiment

import (
	"decor/internal/core"
	"decor/internal/protocol"
	"decor/internal/sim"
	"decor/internal/stats"
)

// ExtAsync compares the round-based execution model (internal/core) with
// the fully event-driven one (internal/protocol): same algorithms, but
// knowledge propagates at message latency instead of round barriers.
// Series report sensors placed per k for both schemes in both models.
func ExtAsync(cfg Config) Figure {
	ks := kRange()
	fig := Figure{
		ID: "ext-async", Title: "Round-based vs event-driven execution (nodes placed)",
		XLabel: "k", YLabel: "nodes placed for 100% coverage",
	}
	type variant struct {
		label string
		run   func(k, run int) float64
	}
	variants := []variant{
		{"grid-round", func(k, run int) float64 {
			m := cfg.NewMap(k, run)
			res := (core.GridDECOR{CellSize: 5}).Deploy(m, cfg.DeployRNG(run), core.Options{})
			return float64(res.NumPlaced())
		}},
		{"grid-event", func(k, run int) float64 {
			m := cfg.NewMap(k, run)
			w := protocol.NewWorld(m, 5, sim.NewEngine(0.05), 1)
			protocol.RunDeployment(w)
			return float64(len(w.PlacementLog))
		}},
		{"voronoi-round", func(k, run int) float64 {
			m := cfg.NewMap(k, run)
			res := (core.VoronoiDECOR{Rc: 2 * cfg.Rs}).Deploy(m, cfg.DeployRNG(run), core.Options{})
			return float64(res.NumPlaced())
		}},
		{"voronoi-event", func(k, run int) float64 {
			m := cfg.NewMap(k, run)
			w := protocol.NewVoronoiWorld(m, 2*cfg.Rs, sim.NewEngine(0.05), 1)
			protocol.RunVoronoiDeployment(w)
			return float64(len(w.PlacementLog))
		}},
	}
	for _, v := range variants {
		ys := make([]float64, len(ks))
		for i, kf := range ks {
			vals := make([]float64, 0, cfg.Runs)
			for run := 0; run < cfg.Runs; run++ {
				vals = append(vals, v.run(int(kf), run))
			}
			ys[i] = stats.Mean(vals)
		}
		fig.Series = append(fig.Series, Series{Label: v.label, X: ks, Y: ys})
	}
	return fig
}

package experiment

import "testing"

// TestTiledFigureTablesByteIdentical is the top-level differential
// guarantee of the tiled engines (DESIGN.md §13): a full figure run
// through tiled storage + tile-parallel placement renders the exact
// same bytes as the seed path. Fig8 covers all six methods across the
// k sweep (grid and centralized through their tiled engines, Voronoi
// and random through the compatibility layer).
func TestTiledFigureTablesByteIdentical(t *testing.T) {
	flat := Quick()
	tiled := Quick()
	tiled.Tiled = true
	tiled.PlaceWorkers = 4
	for _, id := range []string{"fig8", "fig10"} {
		ff, err := ByID(id, flat)
		if err != nil {
			t.Fatal(err)
		}
		ft, err := ByID(id, tiled)
		if err != nil {
			t.Fatal(err)
		}
		if ff.Table() != ft.Table() {
			t.Fatalf("%s table diverges between flat and tiled:\n--- flat ---\n%s--- tiled ---\n%s",
				id, ff.Table(), ft.Table())
		}
	}
	// A resident-page budget must not change results either, only
	// memory behavior.
	bounded := Quick()
	bounded.Tiled = true
	bounded.MaxResidentTiles = 2
	ff, err := ByID("fig8", flat)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := ByID("fig8", bounded)
	if err != nil {
		t.Fatal(err)
	}
	if ff.Table() != fb.Table() {
		t.Fatalf("fig8 table diverges under MaxResidentTiles:\n--- flat ---\n%s--- bounded ---\n%s",
			ff.Table(), fb.Table())
	}
}

package voronoi

import (
	"math"
	"testing"

	"decor/internal/geom"
	"decor/internal/rng"
)

func TestSingleSiteOwnsEverything(t *testing.T) {
	rect := geom.Square(10)
	cells := Diagram([]geom.Point{{X: 3, Y: 7}}, rect)
	if len(cells) != 1 {
		t.Fatal("one cell expected")
	}
	if got := geom.PolygonArea(cells[0]); math.Abs(got-100) > 1e-9 {
		t.Errorf("cell area = %v, want 100", got)
	}
}

func TestTwoSitesSplitAtBisector(t *testing.T) {
	rect := geom.Square(10)
	sites := []geom.Point{{X: 2.5, Y: 5}, {X: 7.5, Y: 5}}
	cells := Diagram(sites, rect)
	for i, want := range []float64{50, 50} {
		if got := geom.PolygonArea(cells[i]); math.Abs(got-want) > 1e-9 {
			t.Errorf("cell %d area = %v, want %v", i, got, want)
		}
	}
	// The bisector is x=5: cell 0 must contain (4.9,5) and not (5.1,5).
	if !Contains(cells[0], geom.Pt(4.9, 5)) || Contains(cells[0], geom.Pt(5.1, 5)) {
		t.Error("bisector split wrong")
	}
}

func TestFourSiteGrid(t *testing.T) {
	rect := geom.Square(10)
	sites := []geom.Point{{X: 2.5, Y: 2.5}, {X: 7.5, Y: 2.5}, {X: 2.5, Y: 7.5}, {X: 7.5, Y: 7.5}}
	cells := Diagram(sites, rect)
	for i, c := range cells {
		if got := geom.PolygonArea(c); math.Abs(got-25) > 1e-9 {
			t.Errorf("cell %d area = %v, want 25", i, got)
		}
		if !Contains(c, sites[i]) {
			t.Errorf("cell %d does not contain its own site", i)
		}
	}
}

func TestCellPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad index should panic")
		}
	}()
	Cell([]geom.Point{{X: 1, Y: 1}}, 1, geom.Square(10))
}

func TestDuplicateSites(t *testing.T) {
	rect := geom.Square(10)
	sites := []geom.Point{{X: 5, Y: 5}, {X: 5, Y: 5}}
	cells := Diagram(sites, rect)
	if cells[0] == nil {
		t.Error("first duplicate should own the cell")
	}
	if cells[1] != nil {
		t.Error("second duplicate should have an empty cell")
	}
}

// Properties on random site sets: cells partition the rectangle (areas
// sum to rect area), every site lies in its own cell, and cell
// membership agrees with nearest-site assignment.
func TestDiagramPartitionProperties(t *testing.T) {
	r := rng.New(23)
	rect := geom.Square(50)
	for trial := 0; trial < 15; trial++ {
		n := 2 + r.Intn(40)
		sites := make([]geom.Point, n)
		for i := range sites {
			sites[i] = r.PointInRect(rect)
		}
		cells := Diagram(sites, rect)
		total := 0.0
		for i, c := range cells {
			area := geom.PolygonArea(c)
			total += area
			if area <= 0 {
				t.Fatalf("trial %d: cell %d degenerate", trial, i)
			}
			if !Contains(c, sites[i]) {
				t.Fatalf("trial %d: site %d outside its cell", trial, i)
			}
		}
		if math.Abs(total-rect.Area()) > 1e-6 {
			t.Fatalf("trial %d: areas sum to %v, want %v", trial, total, rect.Area())
		}
		// Nearest-site agreement on random probes.
		for probe := 0; probe < 100; probe++ {
			p := r.PointInRect(rect)
			best, bestD := -1, math.Inf(1)
			for i, s := range sites {
				if d := s.Dist2(p); d < bestD {
					best, bestD = i, d
				}
			}
			if !Contains(cells[best], p) {
				t.Fatalf("trial %d: probe %v not in nearest site %d's cell", trial, p, best)
			}
		}
	}
}

// The local Voronoi ownership from internal/partition must agree with
// the exact diagram when rc spans the whole field.
func TestAgreesWithPartitionOwnership(t *testing.T) {
	r := rng.New(31)
	rect := geom.Square(40)
	sites := make([]geom.Point, 25)
	for i := range sites {
		sites[i] = r.PointInRect(rect)
	}
	cells := Diagram(sites, rect)
	// Probe with random sample points and cross-check assignments.
	for probe := 0; probe < 300; probe++ {
		p := r.PointInRect(rect)
		owner := -1
		bestD := math.Inf(1)
		for i, s := range sites {
			if d := s.Dist2(p); d < bestD {
				owner, bestD = i, d
			}
		}
		inCells := 0
		for i, c := range cells {
			if Contains(c, p) {
				inCells++
				if i != owner && !onSharedBoundary(p, sites, owner, i) {
					t.Fatalf("probe %v in cell %d but nearest is %d", p, i, owner)
				}
			}
		}
		if inCells == 0 {
			t.Fatalf("probe %v in no cell", p)
		}
	}
}

func onSharedBoundary(p geom.Point, sites []geom.Point, a, b int) bool {
	return math.Abs(p.Dist2(sites[a])-p.Dist2(sites[b])) < 1e-6
}

func TestAreas(t *testing.T) {
	rect := geom.Square(10)
	sites := []geom.Point{{X: 2.5, Y: 5}, {X: 7.5, Y: 5}}
	got := Areas(Diagram(sites, rect))
	if len(got) != 2 || math.Abs(got[0]-50) > 1e-9 || math.Abs(got[1]-50) > 1e-9 {
		t.Errorf("Areas = %v", got)
	}
}

package voronoi

import (
	"testing"

	"decor/internal/geom"
	"decor/internal/rng"
)

// BenchmarkDiagram500 measures the half-plane-clipping diagram at a
// deployment-sized site count.
func BenchmarkDiagram500(b *testing.B) {
	r := rng.New(1)
	rect := geom.Square(100)
	sites := make([]geom.Point, 500)
	for i := range sites {
		sites[i] = r.PointInRect(rect)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Diagram(sites, rect)
	}
}

func BenchmarkSingleCell500(b *testing.B) {
	r := rng.New(2)
	rect := geom.Square(100)
	sites := make([]geom.Point, 500)
	for i := range sites {
		sites[i] = r.PointInRect(rect)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cell(sites, i%500, rect)
	}
}

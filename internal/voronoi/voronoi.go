// Package voronoi computes exact (polygon) Voronoi diagrams clipped to a
// rectangle, by iterative half-plane clipping. The paper's Voronoi-based
// DECOR uses a *local approximation* of these cells over the sample
// points (internal/partition); this package provides the geometric
// ground truth it is validated against, plus cell polygons for
// rendering.
//
// Complexity is O(n) half-plane clips per cell (O(n²) per diagram),
// which is plenty for the paper's deployment sizes and far simpler than
// Fortune's algorithm.
package voronoi

import (
	"decor/internal/geom"
)

// Cell returns the Voronoi cell of sites[i] clipped to rect, as a convex
// polygon in counter-clockwise order. It returns nil when the cell is
// empty (site outside an exotic clip) — cannot happen for sites inside
// rect. Duplicate sites split ties by half-plane boundary, so exact
// duplicates yield degenerate (empty) cells for the higher index.
func Cell(sites []geom.Point, i int, rect geom.Rect) []geom.Point {
	if i < 0 || i >= len(sites) {
		panic("voronoi: site index out of range")
	}
	c := rect.Corners()
	poly := []geom.Point{c[0], c[1], c[2], c[3]}
	si := sites[i]
	for j, sj := range sites {
		if j == i || sj.Eq(si) && j > i {
			continue
		}
		if sj.Eq(si) {
			// An earlier exact duplicate owns the cell.
			return nil
		}
		poly = clipHalfPlane(poly, si, sj)
		if len(poly) == 0 {
			return nil
		}
	}
	return poly
}

// Diagram returns every site's clipped cell.
func Diagram(sites []geom.Point, rect geom.Rect) [][]geom.Point {
	out := make([][]geom.Point, len(sites))
	for i := range sites {
		out[i] = Cell(sites, i, rect)
	}
	return out
}

// clipHalfPlane clips the convex polygon to the half-plane of points at
// least as close to a as to b (the perpendicular bisector, keeping a's
// side), via Sutherland–Hodgman.
func clipHalfPlane(poly []geom.Point, a, b geom.Point) []geom.Point {
	if len(poly) == 0 {
		return nil
	}
	// Signed "inside" function: f(p) > 0 when p is strictly closer to a.
	// f(p) = |p-b|² − |p-a|², linear in p.
	f := func(p geom.Point) float64 {
		return p.Dist2(b) - p.Dist2(a)
	}
	var out []geom.Point
	for k := range poly {
		cur := poly[k]
		next := poly[(k+1)%len(poly)]
		fc, fn := f(cur), f(next)
		if fc >= 0 {
			out = append(out, cur)
		}
		if (fc > 0 && fn < 0) || (fc < 0 && fn > 0) {
			t := fc / (fc - fn)
			out = append(out, cur.Lerp(next, t))
		}
	}
	return out
}

// Contains reports whether p lies in the convex polygon (boundary
// inclusive), assuming counter-clockwise orientation.
func Contains(poly []geom.Point, p geom.Point) bool {
	if len(poly) < 3 {
		return false
	}
	for i := range poly {
		a := poly[i]
		b := poly[(i+1)%len(poly)]
		if b.Sub(a).Cross(p.Sub(a)) < -1e-9 {
			return false
		}
	}
	return true
}

// Areas returns the area of every cell; for sites inside rect they sum
// to rect.Area() (a partition).
func Areas(cells [][]geom.Point) []float64 {
	out := make([]float64, len(cells))
	for i, c := range cells {
		out[i] = geom.PolygonArea(c)
	}
	return out
}

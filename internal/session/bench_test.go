package session

import (
	"context"
	"math"
	"testing"
)

// The 1e5-point session-vs-stateless comparison (ISSUE 8 acceptance):
// the same field regime as core's BenchmarkPlace — 0.2 points/unit²,
// rs = 4, k = 1, n/40 scattered sensors — driven through the session
// delta path and through the stateless /v1/repair-equivalent full
// replan. BENCH_session.json records both; an incremental delta must
// cost at least 10× fewer allocs/op than the full replan.

const benchPoints = 100_000

func benchSpec() Spec {
	return Spec{
		FieldSide: math.Sqrt(benchPoints / 0.2),
		K:         1,
		Rs:        4,
		NumPoints: benchPoints,
		Generator: "halton",
		Seed:      99,
		Scatter:   benchPoints / 40,
		Method:    "centralized",
	}
}

// benchSession wraps a live session state with the bookkeeping the
// driver needs to keep failing sensors forever: the sorted alive-ID
// list, updated from each delta's Placed count. The planner assigns
// placements sequential IDs starting at (largest live ID)+1, so since
// victims always come off the top of the list the new IDs are exactly
// the next integers after the surviving maximum.
type benchSession struct {
	st    *state
	alive []int
}

func newBenchSession(tb testing.TB, spec Spec) *benchSession {
	tb.Helper()
	st, initial, err := newState(context.Background(), "bench", "f", spec, 0)
	if err != nil {
		tb.Fatalf("build session: %v", err)
	}
	b := &benchSession{st: st}
	for id := 0; id < spec.Scatter; id++ {
		b.alive = append(b.alive, id)
	}
	b.grow(initial.Placed)
	return b
}

func (b *benchSession) grow(placed int) {
	next := 0
	if len(b.alive) > 0 {
		next = b.alive[len(b.alive)-1] + 1
	}
	for i := 0; i < placed; i++ {
		b.alive = append(b.alive, next)
		next++
	}
}

// step fails the three most recently placed sensors and repairs.
func (b *benchSession) step(tb testing.TB) Delta {
	victims := append([]int(nil), b.alive[len(b.alive)-3:]...)
	d, err := b.st.apply(context.Background(), victims, 0)
	if err != nil {
		tb.Fatalf("apply: %v", err)
	}
	b.alive = b.alive[:len(b.alive)-3]
	b.grow(d.Placed)
	return d
}

// BenchmarkSessionDelta measures one incremental failure→repair delta
// on a warm 1e5-point session. Setup (field build + initial deploy) is
// excluded; each iteration is exactly what one streamed event costs.
func BenchmarkSessionDelta(b *testing.B) {
	s := newBenchSession(b, benchSpec())
	s.step(b) // warm the incremental path before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(b)
	}
}

// BenchmarkStatelessRepair measures the equivalent stateless
// /v1/repair: rebuild the whole field from the spec, fail the same-size
// batch, and replan. This is what every event costs without sessions.
func BenchmarkStatelessRepair(b *testing.B) {
	spec := benchSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := spec.build()
		if err != nil {
			b.Fatal(err)
		}
		if err := d.FailSensors(0, 1, 2); err != nil {
			b.Fatal(err)
		}
		if _, err := d.DeployContext(context.Background(), spec.Method); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDeltaAllocAdvantage asserts the ISSUE 8 acceptance ratio directly
// (benchstat gates the absolute numbers; this pins the relationship):
// an incremental delta allocates at least 10× less than a stateless
// full replan on the same 1e5-point field.
func TestDeltaAllocAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("1e5-point field build in -short mode")
	}
	spec := benchSpec()
	s := newBenchSession(t, spec)
	s.step(t) // warm
	delta := testing.AllocsPerRun(3, func() { s.step(t) })

	stateless := testing.AllocsPerRun(1, func() {
		d, err := spec.build()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.FailSensors(0, 1, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := d.DeployContext(context.Background(), spec.Method); err != nil {
			t.Fatal(err)
		}
	})
	ratio := stateless / delta
	t.Logf("stateless %.0f allocs, delta %.0f allocs: %.1fx", stateless, delta, ratio)
	if ratio < 10 {
		t.Errorf("delta advantage %.1fx, want >= 10x (stateless %.0f vs delta %.0f allocs)",
			ratio, stateless, delta)
	}
}

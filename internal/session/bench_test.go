package session

import (
	"context"
	"encoding/json"
	"math"
	"testing"
)

// The 1e5-point session-vs-stateless comparison (ISSUE 8 acceptance):
// the same field regime as core's BenchmarkPlace — 0.2 points/unit²,
// rs = 4, k = 1, n/40 scattered sensors — driven through the session
// delta path and through the stateless /v1/repair-equivalent full
// replan. BENCH_session.json records both; an incremental delta must
// cost at least 10× fewer allocs/op than the full replan.

const benchPoints = 100_000

func benchSpec() Spec {
	return Spec{
		FieldSide: math.Sqrt(benchPoints / 0.2),
		K:         1,
		Rs:        4,
		NumPoints: benchPoints,
		Generator: "halton",
		Seed:      99,
		Scatter:   benchPoints / 40,
		Method:    "centralized",
	}
}

// benchSession wraps a live session state with the bookkeeping the
// driver needs to keep failing sensors forever: the sorted alive-ID
// list, updated from each delta's Placed count. The planner assigns
// placements sequential IDs starting at (largest live ID)+1, so since
// victims always come off the top of the list the new IDs are exactly
// the next integers after the surviving maximum.
type benchSession struct {
	st    *state
	alive []int
}

func newBenchSession(tb testing.TB, spec Spec) *benchSession {
	tb.Helper()
	st, initial, err := newState(context.Background(), "bench", "f", spec, 0)
	if err != nil {
		tb.Fatalf("build session: %v", err)
	}
	b := &benchSession{st: st}
	for id := 0; id < spec.Scatter; id++ {
		b.alive = append(b.alive, id)
	}
	b.grow(initial.Placed)
	return b
}

func (b *benchSession) grow(placed int) {
	next := 0
	if len(b.alive) > 0 {
		next = b.alive[len(b.alive)-1] + 1
	}
	for i := 0; i < placed; i++ {
		b.alive = append(b.alive, next)
		next++
	}
}

// step fails the three most recently placed sensors and repairs.
func (b *benchSession) step(tb testing.TB) Delta {
	victims := append([]int(nil), b.alive[len(b.alive)-3:]...)
	d, err := b.st.apply(context.Background(), victims, 0)
	if err != nil {
		tb.Fatalf("apply: %v", err)
	}
	b.alive = b.alive[:len(b.alive)-3]
	b.grow(d.Placed)
	return d
}

// BenchmarkSessionDelta measures one incremental failure→repair delta
// on a warm 1e5-point session. Setup (field build + initial deploy) is
// excluded; each iteration is exactly what one streamed event costs.
func BenchmarkSessionDelta(b *testing.B) {
	s := newBenchSession(b, benchSpec())
	s.step(b) // warm the incremental path before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(b)
	}
}

// BenchmarkStatelessRepair measures the equivalent stateless
// /v1/repair: rebuild the whole field from the spec, fail the same-size
// batch, and replan. This is what every event costs without sessions.
func BenchmarkStatelessRepair(b *testing.B) {
	spec := benchSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := spec.build()
		if err != nil {
			b.Fatal(err)
		}
		if err := d.FailSensors(0, 1, 2); err != nil {
			b.Fatal(err)
		}
		if _, err := d.DeployContext(context.Background(), spec.Method); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDelta is one representative streamed event: a 3-failure repair
// with its replacement placements, the shape every NDJSON/SSE frame
// carries. Static so the encode benches need no 1e5-point field build.
func benchDelta() *Delta {
	return &Delta{
		FieldID: "bench-field", Seq: 42, Method: "centralized",
		Failed: []int{2501, 2502, 2503}, Placed: 3,
		Placements: []Point{
			{X: 101.52343, Y: 330.0078125}, {X: 98.25, Y: 331.875}, {X: 104.4921875, Y: 328.5},
		},
		TotalSensors: 2503, Messages: 118, Rounds: 2,
		CoverageK: 0.999871, Covered: true,
	}
}

// BenchmarkDeltaEncode is the hand-rolled wire encode of one delta into
// a reused buffer — the per-event serialization cost on the session
// streaming path (ISSUE 10). Steady state must be zero allocs/op.
func BenchmarkDeltaEncode(b *testing.B) {
	d := benchDelta()
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = d.AppendJSON(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = buf
}

// BenchmarkDeltaEncodeStdlib is the same delta through reflection-based
// json.Marshal: the baseline the ≥10× encode-alloc gate compares
// against in scripts/benchstat.sh.
func BenchmarkDeltaEncodeStdlib(b *testing.B) {
	d := benchDelta()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(d); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDeltaEncodeAllocFree pins the structural property behind the
// encode gate: AppendJSON into a warm buffer performs zero heap
// allocations, so the ≥10× advantage over json.Marshal can never decay
// below any ratio the stdlib baseline implies.
func TestDeltaEncodeAllocFree(t *testing.T) {
	d := benchDelta()
	buf := make([]byte, 0, 1024)
	var err error
	if buf, err = d.AppendJSON(buf[:0]); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		buf, err = d.AppendJSON(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("Delta.AppendJSON into warm buffer: %.1f allocs/op, want 0", avg)
	}
}

// TestDeltaAllocAdvantage asserts the ISSUE 8 acceptance ratio directly
// (benchstat gates the absolute numbers; this pins the relationship):
// an incremental delta allocates at least 10× less than a stateless
// full replan on the same 1e5-point field.
func TestDeltaAllocAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("1e5-point field build in -short mode")
	}
	spec := benchSpec()
	s := newBenchSession(t, spec)
	s.step(t) // warm
	delta := testing.AllocsPerRun(3, func() { s.step(t) })

	stateless := testing.AllocsPerRun(1, func() {
		d, err := spec.build()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.FailSensors(0, 1, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := d.DeployContext(context.Background(), spec.Method); err != nil {
			t.Fatal(err)
		}
	})
	ratio := stateless / delta
	t.Logf("stateless %.0f allocs, delta %.0f allocs: %.1fx", stateless, delta, ratio)
	if ratio < 10 {
		t.Errorf("delta advantage %.1fx, want >= 10x (stateless %.0f vs delta %.0f allocs)",
			ratio, stateless, delta)
	}
}

package session

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// TestFastRestoreMatchesReplay is the fast path's differential oracle:
// restoring a snapshot via the binary fast section and via full event
// replay must yield sessions with identical persistent state, identical
// rings, and byte-identical future deltas.
func TestFastRestoreMatchesReplay(t *testing.T) {
	ctx := context.Background()
	st, _, err := newState(ctx, "t", "f", testSpec(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range [][]int{{1}, {6, 13}, {0, 9}, {17}} {
		if _, err := st.apply(ctx, ev, 64); err != nil {
			t.Fatal(err)
		}
	}
	raw := st.snapshot()

	fast, err := restore(ctx, raw, 64, true)
	if err != nil {
		t.Fatalf("fast restore: %v", err)
	}
	replayed, err := restore(ctx, raw, 64, false)
	if err != nil {
		t.Fatalf("replay restore: %v", err)
	}
	if fast.seq != replayed.seq || fast.seq != st.seq {
		t.Fatalf("seq: fast %d, replayed %d, live %d", fast.seq, replayed.seq, st.seq)
	}
	fr := mustJSON(t, fast.ring)
	rr := mustJSON(t, replayed.ring)
	if !bytes.Equal(fr, rr) {
		t.Errorf("rings differ:\nfast:     %s\nreplayed: %s", fr, rr)
	}
	// The decisive check: both continue identically, which only holds if
	// the fast path restored the deployment's RNG mid-stream.
	for _, s := range []*state{st, fast, replayed} {
		if _, err := s.apply(ctx, []int{4, 2}, 64); err != nil {
			t.Fatal(err)
		}
	}
	live := mustJSON(t, st.ring[len(st.ring)-1])
	f := mustJSON(t, fast.ring[len(fast.ring)-1])
	r := mustJSON(t, replayed.ring[len(replayed.ring)-1])
	if !bytes.Equal(live, f) || !bytes.Equal(live, r) {
		t.Errorf("post-restore deltas diverged:\nlive:     %s\nfast:     %s\nreplayed: %s", live, f, r)
	}
}

// TestFastRestoreFallsBackOnCorruption: a damaged (or stale) fast
// section must never fail the restore — the replay log is authoritative
// and the fall-back reproduces the session exactly.
func TestFastRestoreFallsBackOnCorruption(t *testing.T) {
	ctx := context.Background()
	st, _, err := newState(ctx, "t", "f", testSpec(4), 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.apply(ctx, []int{2, 8}, 64); err != nil {
		t.Fatal(err)
	}
	var sn Snapshot
	if err := json.Unmarshal(st.snapshot(), &sn); err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, st.ring)

	corrupt := func(name string, mutate func(*Snapshot)) {
		c := sn
		c.Fast = append([]byte(nil), sn.Fast...)
		mutate(&c)
		got, err := restore(ctx, mustJSON(t, c), 64, true)
		if err != nil {
			t.Fatalf("%s: fall-back restore failed: %v", name, err)
		}
		if g := mustJSON(t, got.ring); !bytes.Equal(g, want) {
			t.Errorf("%s: fall-back ring differs:\n%s\nvs\n%s", name, g, want)
		}
	}
	corrupt("bit flip", func(c *Snapshot) { c.Fast[len(c.Fast)/2] ^= 0x40 })
	corrupt("truncated", func(c *Snapshot) { c.Fast = c.Fast[:len(c.Fast)/3] })

	// A fast section whose sequence number disagrees with the replay log
	// is rejected even though it decodes cleanly: the log is the truth,
	// so the restored session reflects the (shortened) log, not the cache.
	stale := sn
	stale.Events = nil
	got, err := restore(ctx, mustJSON(t, stale), 64, true)
	if err != nil {
		t.Fatalf("stale seq: fall-back restore failed: %v", err)
	}
	if got.seq != 0 {
		t.Errorf("stale seq: restored seq %d from a cache the log disowns", got.seq)
	}
}

// TestSessionMigrationDeltaParity is the shard-to-shard migration gate
// (run in `make session-smoke`): apply events on manager A, Export,
// Import into manager B, keep applying — the combined delta stream must
// be byte-equal to a never-migrated session's.
func TestSessionMigrationDeltaParity(t *testing.T) {
	events := [][]int{{1}, {6, 13}, {0, 9}, {17}, {4, 2}}
	const cut = 3 // migrate after the first three events

	apply := func(m *Manager, buf *bytes.Buffer, evs [][]int) {
		t.Helper()
		for _, ev := range evs {
			d, err := m.Apply("t", "f", ev)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(mustJSON(t, d))
		}
	}

	// Control: one manager, never migrated.
	control := newTestManager(t, Config{})
	var want bytes.Buffer
	_, initial, err := control.Create("t", "f", testSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	want.Write(mustJSON(t, initial))
	apply(control, &want, events)

	// Migrated: A takes the first events, B finishes. Shard counts
	// differ on purpose — the stream must not care where the field runs.
	a := newTestManager(t, Config{Shards: 1})
	b := newTestManager(t, Config{Shards: 4})
	var got bytes.Buffer
	if _, initial, err = a.Create("t", "f", testSpec(5)); err != nil {
		t.Fatal(err)
	}
	got.Write(mustJSON(t, initial))
	apply(a, &got, events[:cut])

	blob, err := a.Export("t", "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("t", "f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("exported session still on A: %v", err)
	}
	if st := a.Stats(); st.Sessions != 0 {
		t.Errorf("A still accounts %d sessions after export", st.Sessions)
	}
	if err := b.Import("t", blob); err != nil {
		t.Fatal(err)
	}
	if info, err := b.Get("t", "f"); err != nil || !info.Evicted || info.Seq != cut {
		t.Fatalf("imported info = %+v, err %v", info, err)
	}
	apply(b, &got, events[cut:])

	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("migrated delta stream diverged:\n%s\nvs\n%s", &got, &want)
	}

	// The same migration with fast restore disabled on the importer —
	// the replay oracle — must produce the same stream too.
	c := newTestManager(t, Config{DisableFastRestore: true})
	var slow bytes.Buffer
	if err := c.Import("t", blob); err != nil {
		t.Fatal(err)
	}
	apply(c, &slow, events[cut:])
	if !bytes.Equal(got.Bytes()[got.Len()-slow.Len():], slow.Bytes()) {
		t.Error("replay-restored import diverged from fast-restored import")
	}
}

// TestExportImportGuards: exporting under subscribers is refused,
// importing a foreign tenant's snapshot is refused, importing over an
// existing field is refused, and quotas move with the session.
func TestExportImportGuards(t *testing.T) {
	m := newTestManager(t, Config{})
	if _, _, err := m.Create("t", "f", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	_, cancel, err := m.Subscribe("t", "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Export("t", "f"); !errors.Is(err, ErrSubscribed) {
		t.Errorf("export under subscriber: %v", err)
	}
	cancel()
	blob, err := m.Export("t", "f")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Import("rival", blob); !errors.Is(err, ErrTenantMismatch) {
		t.Errorf("cross-tenant import: %v", err)
	}
	if err := m.Import("t", []byte("not json")); err == nil {
		t.Error("corrupt import accepted")
	}
	if err := m.Import("t", blob); err != nil {
		t.Fatal(err)
	}
	if err := m.Import("t", blob); !errors.Is(err, ErrExists) {
		t.Errorf("double import: %v", err)
	}
	// An imported session sits in evicted form; exporting it again hands
	// back the stored snapshot verbatim.
	blob2, err := m.Export("t", "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Error("evicted-session export differs from its snapshot")
	}
	if st := m.Stats(); st.Sessions != 0 {
		t.Errorf("stats after final export = %+v, want 0 sessions", st)
	}
}

package session

import (
	"encoding/json"
	"math"
	"testing"
)

func deltaParity(t *testing.T, d *Delta) {
	t.Helper()
	want, wantErr := json.Marshal(d)
	got, gotErr := d.AppendJSON(nil)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("delta %+v: AppendJSON err=%v, json.Marshal err=%v", d, gotErr, wantErr)
	}
	if wantErr == nil && string(got) != string(want) {
		t.Errorf("delta %+v:\n got %s\nwant %s", d, got, want)
	}
}

func TestDeltaAppendJSONParity(t *testing.T) {
	cases := []*Delta{
		{},
		{FieldID: "f1", Seq: 0, Method: "voronoi-big", Placements: []Point{}},
		{FieldID: "f-2", Seq: 7, Method: "centralized",
			Failed: []int{3, 1, 2}, Placed: 2,
			Placements: []Point{{X: 1.5, Y: 2.25}, {X: 0, Y: -3.125}},
			TotalSensors: 41, Messages: 120, Rounds: 3,
			CoverageK: 0.987654321, Covered: false},
		{FieldID: `needs "escaping" <&> ` + "\n\t", Method: "m\x00ethod",
			Placements: []Point{{X: 1e-7, Y: 1e21}}, CoverageK: 1},
		{FieldID: "nilvszero", Failed: []int{}, Placements: nil, CoverageK: 1, Covered: true},
		{FieldID: "maxima", Seq: math.MaxUint64, Placed: math.MaxInt,
			TotalSensors: math.MinInt, Messages: -1, Rounds: math.MaxInt32,
			Placements: []Point{{X: math.MaxFloat64, Y: 5e-324}}},
		{FieldID: "badfloat", CoverageK: math.NaN(), Placements: []Point{}},
		{FieldID: "badpoint", Placements: []Point{{X: math.Inf(1)}}},
		{FieldID: "utf8 héllo 世界 \xff", Method: "🎉"},
	}
	for _, d := range cases {
		deltaParity(t, d)
	}
}

func TestInfoAppendJSONParity(t *testing.T) {
	cases := []*Info{
		{},
		{FieldID: "f1", Tenant: "acme", Seq: 12, TotalSensors: 99,
			CoverageK: 0.75, Covered: true, Evicted: true},
		{FieldID: `q"uote`, Tenant: "<t&t>", CoverageK: 1e-8},
		{FieldID: "nan", CoverageK: math.NaN()},
	}
	for _, inf := range cases {
		want, wantErr := json.Marshal(inf)
		got, gotErr := inf.AppendJSON(nil)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("info %+v: AppendJSON err=%v, json.Marshal err=%v", inf, gotErr, wantErr)
		}
		if wantErr == nil && string(got) != string(want) {
			t.Errorf("info %+v:\n got %s\nwant %s", inf, got, want)
		}
	}
}

// FuzzDeltaCodecParity is the session half of the codec parity fuzz
// (ISSUE 10 satellite): randomized deltas through both encoders must
// produce identical bytes, and non-finite floats must be rejected by
// both sides, never emitted.
func FuzzDeltaCodecParity(f *testing.F) {
	f.Add("field-1", uint64(3), "voronoi-big", 2, 5, int64(7), 4, 2, 0.5, 1.25, -3.5, true, false)
	f.Add("", uint64(0), "", 0, 0, int64(0), 0, 0, 0.0, 0.0, 0.0, false, true)
	f.Add("esc\"<&>\n", uint64(math.MaxUint64), "m", 3, 1, int64(-9), -1, -2,
		math.Inf(1), 1e21, 9.999999e-7, true, true)
	f.Fuzz(func(t *testing.T, fieldID string, seq uint64, method string,
		nFailed, placed int, pbits int64, total, messages int,
		covK, px, py float64, covered, nilPlacements bool) {
		if nFailed < 0 || nFailed > 64 {
			return
		}
		d := &Delta{
			FieldID: fieldID, Seq: seq, Method: method,
			Placed: placed, TotalSensors: total, Messages: messages,
			Rounds: int(pbits % 1000), CoverageK: covK, Covered: covered,
		}
		for i := 0; i < nFailed; i++ {
			d.Failed = append(d.Failed, int(pbits)+i)
		}
		if !nilPlacements {
			d.Placements = []Point{}
			for i := 0; i < nFailed%5; i++ {
				d.Placements = append(d.Placements, Point{X: px + float64(i), Y: py * float64(i)})
			}
		}
		deltaParity(t, d)
	})
}

package session

import (
	"fmt"

	"decor/internal/jsonx"
)

// AppendJSON appends d exactly as json.Marshal(d) would render it (no
// trailing newline), growing b. The only possible error is a non-finite
// float, which json.Marshal also refuses; on error b is returned
// unchanged in content but possibly regrown, so callers must treat the
// buffer as dirty and reset to the pre-call length. Parity with
// encoding/json is a hard invariant (DESIGN.md §16): cached and
// replayed delta streams must stay byte-identical.
func (d *Delta) AppendJSON(b []byte) ([]byte, error) {
	b = append(b, `{"field_id":`...)
	b = jsonx.AppendString(b, d.FieldID)
	b = append(b, `,"seq":`...)
	b = jsonx.AppendUint(b, d.Seq)
	b = append(b, `,"method":`...)
	b = jsonx.AppendString(b, d.Method)
	if len(d.Failed) > 0 {
		b = append(b, `,"failed":[`...)
		for i, id := range d.Failed {
			if i > 0 {
				b = append(b, ',')
			}
			b = jsonx.AppendInt(b, int64(id))
		}
		b = append(b, ']')
	}
	b = append(b, `,"placed":`...)
	b = jsonx.AppendInt(b, int64(d.Placed))
	b = append(b, `,"placements":`...)
	var err error
	if b, err = appendPoints(b, d.Placements); err != nil {
		return b, err
	}
	b = append(b, `,"total_sensors":`...)
	b = jsonx.AppendInt(b, int64(d.TotalSensors))
	if d.Messages != 0 {
		b = append(b, `,"messages":`...)
		b = jsonx.AppendInt(b, int64(d.Messages))
	}
	if d.Rounds != 0 {
		b = append(b, `,"rounds":`...)
		b = jsonx.AppendInt(b, int64(d.Rounds))
	}
	b = append(b, `,"coverage_k":`...)
	b, ok := jsonx.AppendFloat(b, d.CoverageK)
	if !ok {
		return b, fmt.Errorf("session: delta coverage_k %v is not a valid JSON number", d.CoverageK)
	}
	b = append(b, `,"fully_covered":`...)
	b = jsonx.AppendBool(b, d.Covered)
	return append(b, '}'), nil
}

// appendPoints renders a []Point with encoding/json's nil/empty split:
// nil encodes as null, empty non-nil as [].
func appendPoints(b []byte, pts []Point) ([]byte, error) {
	if pts == nil {
		return append(b, "null"...), nil
	}
	b = append(b, '[')
	for i := range pts {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"x":`...)
		var ok bool
		if b, ok = jsonx.AppendFloat(b, pts[i].X); !ok {
			return b, fmt.Errorf("session: placement x %v is not a valid JSON number", pts[i].X)
		}
		b = append(b, `,"y":`...)
		if b, ok = jsonx.AppendFloat(b, pts[i].Y); !ok {
			return b, fmt.Errorf("session: placement y %v is not a valid JSON number", pts[i].Y)
		}
		b = append(b, '}')
	}
	return append(b, ']'), nil
}

// AppendJSON appends inf exactly as json.Marshal(inf) would render it.
func (inf *Info) AppendJSON(b []byte) ([]byte, error) {
	b = append(b, `{"field_id":`...)
	b = jsonx.AppendString(b, inf.FieldID)
	b = append(b, `,"tenant":`...)
	b = jsonx.AppendString(b, inf.Tenant)
	b = append(b, `,"seq":`...)
	b = jsonx.AppendUint(b, inf.Seq)
	b = append(b, `,"total_sensors":`...)
	b = jsonx.AppendInt(b, int64(inf.TotalSensors))
	b = append(b, `,"coverage_k":`...)
	b, ok := jsonx.AppendFloat(b, inf.CoverageK)
	if !ok {
		return b, fmt.Errorf("session: info coverage_k %v is not a valid JSON number", inf.CoverageK)
	}
	b = append(b, `,"fully_covered":`...)
	b = jsonx.AppendBool(b, inf.Covered)
	b = append(b, `,"evicted":`...)
	b = jsonx.AppendBool(b, inf.Evicted)
	return append(b, '}'), nil
}

// Package session holds long-lived per-tenant field state for the
// serving layer: a field is created once (POST /v1/fields), then failure
// events stream in and incremental delta plans stream out, so a single
// sensor failure costs an incremental repair on the live coverage map
// instead of a full stateless replan (ROADMAP item 1, DESIGN.md §14).
//
// The paper's restoration loop (§3) is inherently continuous — holes
// open under ongoing failures and are healed as they appear — and this
// package is that loop as a service primitive. Sessions are sharded by
// consistent hash of the field ID across a fixed set of shard
// goroutines; every operation on a session executes on its shard's
// goroutine, which is exactly the single-goroutine confinement the decor
// facade documents. Determinism is load-bearing throughout: a session's
// delta stream is a pure function of its spec and its event sequence, so
// an evicted session restores by replay and the restored session's
// future deltas are byte-identical to the unevicted ones.
package session

import (
	"context"
	"errors"
	"fmt"

	"decor"
)

// Point is a field position in delta JSON (mirrors the service wire
// shape; session cannot import service without a cycle).
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Sensor is one pre-deployed sensor in a Spec, with an explicit ID so
// failure events are unambiguous.
type Sensor struct {
	ID int     `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// Spec is the canonical description of a session's initial field: the
// deployment parameters plus the pre-deployed network. It must already
// be validated and defaulted (the service layer reuses its request
// normalization); Spec fields are stored verbatim in snapshots, so the
// same Spec always rebuilds the same field.
type Spec struct {
	FieldSide float64  `json:"field_side"`
	K         int      `json:"k"`
	Rs        float64  `json:"rs"`
	Rc        float64  `json:"rc,omitempty"`
	NumPoints int      `json:"num_points"`
	Generator string   `json:"generator,omitempty"`
	Seed      uint64   `json:"seed,omitempty"`
	Sensors   []Sensor `json:"sensors,omitempty"`
	Scatter   int      `json:"scatter,omitempty"`
	// Method is the planner used for the initial deploy and every delta
	// repair.
	Method string `json:"method"`
}

// build constructs the spec's deployment: explicit sensors first, then
// the scattered ones (the facade's nextID rule gives them sequential IDs
// after the largest explicit one).
func (sp Spec) build() (*decor.Deployment, error) {
	d, err := decor.NewDeployment(decor.Params{
		FieldSide: sp.FieldSide,
		K:         sp.K,
		Rs:        sp.Rs,
		Rc:        sp.Rc,
		NumPoints: sp.NumPoints,
		Generator: sp.Generator,
		Seed:      sp.Seed,
	})
	if err != nil {
		return nil, err
	}
	for _, s := range sp.Sensors {
		if err := d.AddSensorID(s.ID, decor.Point{X: s.X, Y: s.Y}); err != nil {
			return nil, err
		}
	}
	if sp.Scatter > 0 {
		d.ScatterRandom(sp.Scatter)
	}
	return d, nil
}

// Delta is one incremental plan: the repair for a single failure event
// (or, at Seq 0, the session's initial restoration plan). Every field is
// a deterministic function of the spec and the event sequence — no wall
// clock, no per-run identifiers — which is what makes delta streams
// byte-identical across replays and restores.
type Delta struct {
	FieldID string `json:"field_id"`
	Seq     uint64 `json:"seq"`
	Method  string `json:"method"`
	// Failed lists the sensors this event destroyed (empty at Seq 0).
	Failed []int `json:"failed,omitempty"`
	// Placed sensors restore full K-coverage; Placements in placement
	// order is the actuation route, exactly as in a stateless plan.
	Placed       int     `json:"placed"`
	Placements   []Point `json:"placements"`
	TotalSensors int     `json:"total_sensors"`
	Messages     int     `json:"messages,omitempty"`
	Rounds       int     `json:"rounds,omitempty"`
	CoverageK    float64 `json:"coverage_k"`
	Covered      bool    `json:"fully_covered"`
}

// Info is the session metadata returned by Manager.Get and Create.
type Info struct {
	FieldID string `json:"field_id"`
	Tenant  string `json:"tenant"`
	// Seq is the last delta sequence number (0 = only the initial plan).
	Seq          uint64  `json:"seq"`
	TotalSensors int     `json:"total_sensors"`
	CoverageK    float64 `json:"coverage_k"`
	Covered      bool    `json:"fully_covered"`
	// Evicted reports that the session currently lives as a snapshot;
	// the next event restores it transparently.
	Evicted bool `json:"evicted"`
}

// Sentinel errors, mapped to HTTP statuses by the service layer.
var (
	// ErrNotFound: no session with that field ID for that tenant (404).
	ErrNotFound = errors.New("session: field not found")
	// ErrExists: Create with a field ID the tenant already uses (409).
	ErrExists = errors.New("session: field already exists")
	// ErrTenantSessions: the tenant's session quota is exhausted (429).
	ErrTenantSessions = errors.New("session: tenant session quota exhausted")
	// ErrTenantBusy: too many of the tenant's events are pending (429).
	ErrTenantBusy = errors.New("session: tenant event quota exhausted")
	// ErrSaturated: a shard mailbox or the global session table is full (503).
	ErrSaturated = errors.New("session: saturated")
	// ErrClosed: the manager is shut down (503).
	ErrClosed = errors.New("session: manager closed")
)

// state is one live session. It is owned by exactly one shard goroutine:
// no field here is ever touched from anywhere else, which honors the
// facade's single-goroutine contract for the Deployment.
type state struct {
	tenant string
	id     string
	spec   Spec
	d      *decor.Deployment
	// events records every applied failure batch in order — the replay
	// log that snapshots persist and restores re-run.
	events [][]int
	seq    uint64
	// ring holds the most recent deltas (including Seq 0) for SSE
	// catch-up reads; capacity is Config.RingDeltas.
	ring []Delta
	// subs receive every new delta; a subscriber that falls behind is
	// dropped (closed channel tells the SSE handler to hang up).
	subs    map[int]chan Delta
	nextSub int
	// lastUse is advisory wall-clock for idle eviction only; it never
	// influences any output.
	lastUse int64 // unix nanos, from Manager.now
}

// newState builds the session and runs its initial restoration deploy
// (Seq 0): the session invariant is "fully K-covered between events",
// so creation restores coverage exactly like a stateless /v1/plan.
func newState(ctx context.Context, tenant, id string, spec Spec, ringCap int) (*state, Delta, error) {
	d, err := spec.build()
	if err != nil {
		return nil, Delta{}, err
	}
	st := &state{
		tenant: tenant,
		id:     id,
		spec:   spec,
		d:      d,
		subs:   map[int]chan Delta{},
	}
	rep, err := d.DeployContext(ctx, spec.Method)
	if err != nil {
		return nil, Delta{}, err
	}
	delta := st.deltaFrom(rep, nil)
	st.pushRing(delta, ringCap)
	return st, delta, nil
}

// apply destroys one failure batch and repairs the hole incrementally on
// the live coverage map. The event is appended to the replay log only
// after the repair succeeds, so a rejected event (unknown sensor ID)
// leaves the session byte-identical to before.
func (st *state) apply(ctx context.Context, failed []int, ringCap int) (Delta, error) {
	if len(failed) == 0 {
		return Delta{}, fmt.Errorf("session: event with no failed sensors")
	}
	if err := st.d.FailSensors(failed...); err != nil {
		return Delta{}, err
	}
	rep, err := st.d.DeployContext(ctx, st.spec.Method)
	if err != nil {
		return Delta{}, err
	}
	st.seq++
	st.events = append(st.events, append([]int(nil), failed...))
	delta := st.deltaFrom(rep, failed)
	st.pushRing(delta, ringCap)
	for key, ch := range st.subs {
		select {
		case ch <- delta:
		default:
			// Subscriber fell behind its buffer: drop it. The closed
			// channel tells the reader to reconnect with from_seq.
			close(ch)
			delete(st.subs, key)
		}
	}
	return delta, nil
}

func (st *state) deltaFrom(rep decor.Report, failed []int) Delta {
	placements := make([]Point, len(rep.Placements))
	for i, p := range rep.Placements {
		placements[i] = Point{X: p.X, Y: p.Y}
	}
	return Delta{
		FieldID:      st.id,
		Seq:          st.seq,
		Method:       rep.Method,
		Failed:       failed,
		Placed:       rep.Placed,
		Placements:   placements,
		TotalSensors: rep.TotalSensors,
		Messages:     rep.Messages,
		Rounds:       rep.Rounds,
		CoverageK:    st.d.Coverage(st.spec.K),
		Covered:      st.d.FullyCovered(),
	}
}

func (st *state) pushRing(d Delta, cap int) {
	if cap <= 0 {
		return
	}
	st.ring = append(st.ring, d)
	if len(st.ring) > cap {
		st.ring = st.ring[len(st.ring)-cap:]
	}
}

func (st *state) info(evicted bool) Info {
	return Info{
		FieldID:      st.id,
		Tenant:       st.tenant,
		Seq:          st.seq,
		TotalSensors: st.d.NumSensors(),
		CoverageK:    st.d.Coverage(st.spec.K),
		Covered:      st.d.FullyCovered(),
		Evicted:      evicted,
	}
}

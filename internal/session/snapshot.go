package session

import (
	"context"
	"encoding/json"
	"fmt"
)

// Snapshot is the persistent form of a session: its spec plus the replay
// log of applied failure batches. Restoration replays the log against a
// freshly built field — every step is seeded and deterministic, so the
// restored session (coverage map, RNG position, delta ring, sequence
// number) is byte-for-byte the session that was evicted, and its future
// deltas are identical to the ones the unevicted session would have
// produced. That replay-equals-live property is exactly what the
// differential tests assert (DESIGN.md §14).
type Snapshot struct {
	Tenant string  `json:"tenant"`
	ID     string  `json:"field_id"`
	Spec   Spec    `json:"spec"`
	Events [][]int `json:"events,omitempty"`
}

// snapshot captures the session's persistent state. Live-only state (the
// subscriber set, the coverage map itself) is reconstructed on restore.
func (st *state) snapshot() []byte {
	b, err := json.Marshal(Snapshot{
		Tenant: st.tenant,
		ID:     st.id,
		Spec:   st.spec,
		Events: st.events,
	})
	if err != nil {
		// Spec and events are plain structs of finite numbers.
		panic(fmt.Sprintf("session: snapshot marshal: %v", err))
	}
	return b
}

// restore rebuilds a session from its snapshot by replaying the event
// log: initial deploy, then every failure batch in order. The delta ring
// refills from the replayed deltas, so SSE catch-up reads spanning an
// evict/restore boundary see one seamless stream.
func restore(ctx context.Context, raw []byte, ringCap int) (*state, error) {
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("session: corrupt snapshot: %w", err)
	}
	st, _, err := newState(ctx, snap.Tenant, snap.ID, snap.Spec, ringCap)
	if err != nil {
		return nil, fmt.Errorf("session: restore build: %w", err)
	}
	for i, failed := range snap.Events {
		if _, err := st.apply(ctx, failed, ringCap); err != nil {
			return nil, fmt.Errorf("session: restore replay event %d: %w", i, err)
		}
	}
	return st, nil
}

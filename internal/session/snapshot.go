package session

import (
	"context"
	"encoding/json"
	"fmt"

	"decor"
	"decor/internal/snap"
)

// Snapshot is the persistent form of a session: its spec plus the replay
// log of applied failure batches. Restoration replays the log against a
// freshly built field — every step is seeded and deterministic, so the
// restored session (coverage map, RNG position, delta ring, sequence
// number) is byte-for-byte the session that was evicted, and its future
// deltas are identical to the ones the unevicted session would have
// produced. That replay-equals-live property is exactly what the
// differential tests assert (DESIGN.md §14).
type Snapshot struct {
	Tenant string  `json:"tenant"`
	ID     string  `json:"field_id"`
	Spec   Spec    `json:"spec"`
	Events [][]int `json:"events,omitempty"`
	// Fast is the binary capture of the post-replay state — deployment
	// snapshot, sequence number, delta ring — letting restore skip the
	// O(events) replay loop (DESIGN.md §15). It is strictly an
	// accelerator: the replay log above stays authoritative, any decode
	// problem falls back to replaying Events, and the differential tests
	// pin fast-restored sessions byte-equal to replayed ones.
	Fast []byte `json:"fast,omitempty"`
}

// snapshot captures the session's persistent state. Live-only state (the
// subscriber set, the coverage map itself) is reconstructed on restore.
func (st *state) snapshot() []byte {
	b, err := json.Marshal(Snapshot{
		Tenant: st.tenant,
		ID:     st.id,
		Spec:   st.spec,
		Events: st.events,
		Fast:   st.fastState(),
	})
	if err != nil {
		// Spec and events are plain structs of finite numbers.
		panic(fmt.Sprintf("session: snapshot marshal: %v", err))
	}
	return b
}

// fastState seals the state a replay would otherwise recompute: the
// deployment (sensors + mid-stream RNG), the sequence number, and the
// delta ring that SSE catch-up reads depend on.
func (st *state) fastState() []byte {
	ringJS, err := json.Marshal(st.ring)
	if err != nil {
		panic(fmt.Sprintf("session: ring marshal: %v", err))
	}
	w := snap.NewWriter()
	w.Bytes(st.d.Snapshot())
	w.U64(st.seq)
	w.Bytes(ringJS)
	return w.Seal()
}

// restore rebuilds a session from its snapshot. With fast set and an
// intact Fast section it restores the deployment directly; otherwise it
// replays the event log — initial deploy, then every failure batch in
// order — against a fresh field. Either way the delta ring holds the
// same entries, so SSE catch-up reads spanning an evict/restore boundary
// see one seamless stream.
func restore(ctx context.Context, raw []byte, ringCap int, fast bool) (*state, error) {
	var sn Snapshot
	if err := json.Unmarshal(raw, &sn); err != nil {
		return nil, fmt.Errorf("session: corrupt snapshot: %w", err)
	}
	if fast && len(sn.Fast) > 0 {
		if st, err := restoreFast(sn, ringCap); err == nil {
			return st, nil
		}
		// The replay log is authoritative; a bad Fast section only costs
		// the replay below.
	}
	st, _, err := newState(ctx, sn.Tenant, sn.ID, sn.Spec, ringCap)
	if err != nil {
		return nil, fmt.Errorf("session: restore build: %w", err)
	}
	for i, failed := range sn.Events {
		if _, err := st.apply(ctx, failed, ringCap); err != nil {
			return nil, fmt.Errorf("session: restore replay event %d: %w", i, err)
		}
	}
	return st, nil
}

// restoreFast decodes the Fast section. The sequence number must agree
// with the replay log's length — a snapshot whose cache and log disagree
// is rejected here and replayed instead.
func restoreFast(sn Snapshot, ringCap int) (*state, error) {
	r, err := snap.Open(sn.Fast)
	if err != nil {
		return nil, err
	}
	db := r.Bytes()
	seq := r.U64()
	ringJS := r.Bytes()
	if err := r.Close(); err != nil {
		return nil, err
	}
	if seq != uint64(len(sn.Events)) {
		return nil, fmt.Errorf("%w: fast seq %d over %d logged events",
			snap.ErrMalformed, seq, len(sn.Events))
	}
	d, err := decor.RestoreDeployment(db)
	if err != nil {
		return nil, err
	}
	var ring []Delta
	if len(ringJS) > 0 {
		if err := json.Unmarshal(ringJS, &ring); err != nil {
			return nil, fmt.Errorf("%w: fast ring: %v", snap.ErrMalformed, err)
		}
	}
	if ringCap > 0 && len(ring) > ringCap {
		ring = ring[len(ring)-ringCap:]
	}
	return &state{
		tenant: sn.Tenant,
		id:     sn.ID,
		spec:   sn.Spec,
		d:      d,
		events: sn.Events,
		seq:    seq,
		ring:   ring,
		subs:   map[int]chan Delta{},
	}, nil
}

package session

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"decor/internal/obs"
)

// testSpec is a small, fast field: the centralized planner restores it
// in a few milliseconds. Scattered sensors take IDs 0..scatter-1.
func testSpec(seed uint64) Spec {
	return Spec{
		FieldSide: 30,
		K:         1,
		Rs:        4,
		NumPoints: 200,
		Generator: "halton",
		Seed:      seed,
		Scatter:   20,
		Method:    "centralized",
	}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	m := New(cfg)
	t.Cleanup(m.Close)
	return m
}

// mustJSON marshals a delta to its canonical wire bytes.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSessionLifecycle(t *testing.T) {
	m := newTestManager(t, Config{})
	info, initial, err := m.Create("acme", "field-1", testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if info.FieldID != "field-1" || info.Tenant != "acme" || info.Seq != 0 {
		t.Errorf("create info = %+v", info)
	}
	if !initial.Covered || initial.Seq != 0 || initial.Placed != len(initial.Placements) {
		t.Errorf("initial delta = %+v", initial)
	}

	// A failure event yields an incremental repair that restores coverage.
	d1, err := m.Apply("acme", "field-1", []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if d1.Seq != 1 || !reflect.DeepEqual(d1.Failed, []int{0, 3}) || !d1.Covered {
		t.Errorf("delta 1 = %+v", d1)
	}

	// Unknown sensor IDs are rejected atomically: the session is unchanged.
	if _, err := m.Apply("acme", "field-1", []int{99999}); err == nil {
		t.Error("unknown sensor id accepted")
	}
	if _, err := m.Apply("acme", "field-1", nil); err == nil {
		t.Error("empty event accepted")
	}
	got, err := m.Get("acme", "field-1")
	if err != nil || got.Seq != 1 {
		t.Errorf("after rejected events: info = %+v, err %v", got, err)
	}

	// Duplicate create, unknown field, cross-tenant access.
	if _, _, err := m.Create("acme", "field-1", testSpec(1)); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create err = %v", err)
	}
	if _, err := m.Apply("acme", "nope", []int{1}); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown field err = %v", err)
	}
	if _, err := m.Apply("rival", "field-1", []int{1}); !errors.Is(err, ErrNotFound) {
		t.Errorf("cross-tenant apply must look like not-found, got %v", err)
	}
	if _, err := m.Get("rival", "field-1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cross-tenant get must look like not-found, got %v", err)
	}

	if err := m.Drop("acme", "field-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("acme", "field-1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("dropped field still visible: %v", err)
	}
}

// TestDeltaStreamDeterminism: two managers fed the same creates and
// events produce byte-identical delta streams, regardless of shard count.
func TestDeltaStreamDeterminism(t *testing.T) {
	events := [][]int{{0}, {4, 7}, {1}, {12, 2, 19}, {5}}
	stream := func(shards int) []byte {
		m := newTestManager(t, Config{Shards: shards})
		var buf bytes.Buffer
		_, initial, err := m.Create("t", "f", testSpec(9))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(mustJSON(t, initial))
		for _, ev := range events {
			d, err := m.Apply("t", "f", ev)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(mustJSON(t, d))
		}
		return buf.Bytes()
	}
	a, b, c := stream(1), stream(4), stream(1)
	if !bytes.Equal(a, b) {
		t.Error("delta stream differs across shard counts")
	}
	if !bytes.Equal(a, c) {
		t.Error("delta stream differs across identical runs")
	}
}

// TestDifferentialReplayParity is the delta-repair correctness gate: at
// every step, the session's cumulative state and latest delta must be
// byte-identical to a stateless full replan — a fresh deployment built
// from the spec that replays the whole event history from scratch.
func TestDifferentialReplayParity(t *testing.T) {
	m := newTestManager(t, Config{})
	spec := testSpec(3)
	_, initial, err := m.Create("t", "f", spec)
	if err != nil {
		t.Fatal(err)
	}

	events := [][]int{{2}, {8, 11}, {0}, {15, 6}, {3, 18, 9}}
	applied := [][]int{}
	for step, ev := range events {
		d, err := m.Apply("t", "f", ev)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		applied = append(applied, ev)

		// Stateless full replan: rebuild everything from the spec and
		// replay the full history.
		fresh, err := restore(context.Background(), mustJSON(t, Snapshot{
			Tenant: "t", ID: "f", Spec: spec, Events: applied,
		}), 64, false)
		if err != nil {
			t.Fatalf("step %d replay: %v", step, err)
		}
		want := fresh.ring[len(fresh.ring)-1]
		if !bytes.Equal(mustJSON(t, d), mustJSON(t, want)) {
			t.Fatalf("step %d: session delta diverged from stateless replan\nsession: %s\nreplan:  %s",
				step, mustJSON(t, d), mustJSON(t, want))
		}
		if step == 0 {
			// The replay's Seq-0 delta equals the session's initial plan.
			if !bytes.Equal(mustJSON(t, initial), mustJSON(t, fresh.ring[0])) {
				t.Error("initial plan diverged from replay seq 0")
			}
		}

		// Full cumulative state parity: identical sensor sets.
		live, err := m.Get("t", "f")
		if err != nil {
			t.Fatal(err)
		}
		if live.TotalSensors != fresh.d.NumSensors() {
			t.Fatalf("step %d: sensors %d vs replan %d", step, live.TotalSensors, fresh.d.NumSensors())
		}
	}
}

// TestEvictRestoreDeterminism: evicting and restoring mid-stream must
// not change a single byte of the delta stream.
func TestEvictRestoreDeterminism(t *testing.T) {
	events := [][]int{{1}, {6, 13}, {0, 9}, {17}, {4, 2}}
	run := func(evictAfter map[int]bool) []byte {
		reg := obs.NewRegistry()
		m := newTestManager(t, Config{Registry: reg})
		var buf bytes.Buffer
		_, initial, err := m.Create("t", "f", testSpec(5))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(mustJSON(t, initial))
		for i, ev := range events {
			d, err := m.Apply("t", "f", ev)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(mustJSON(t, d))
			if evictAfter[i] {
				if err := m.Evict("t", "f"); err != nil {
					t.Fatal(err)
				}
				if info, err := m.Get("t", "f"); err != nil || !info.Evicted {
					t.Fatalf("expected evicted info, got %+v err %v", info, err)
				}
			}
		}
		return buf.Bytes()
	}
	straight := run(nil)
	interrupted := run(map[int]bool{0: true, 2: true, 3: true})
	if !bytes.Equal(straight, interrupted) {
		t.Error("evict/restore changed the delta stream")
	}
}

func TestEvictIdleAndJanitorAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestManager(t, Config{Registry: reg})
	for i := 0; i < 3; i++ {
		if _, _, err := m.Create("t", fmt.Sprintf("f%d", i), testSpec(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.EvictIdle(0); n != 3 {
		t.Fatalf("EvictIdle evicted %d, want 3", n)
	}
	// Idempotent: already evicted.
	if n := m.EvictIdle(0); n != 0 {
		t.Fatalf("second EvictIdle evicted %d, want 0", n)
	}
	// Evicted sessions still count against the tenant (they are owned
	// state), and restore transparently on the next event.
	if st := m.Stats(); st.Sessions != 3 {
		t.Errorf("stats after evict = %+v, want 3 sessions", st)
	}
	if _, err := m.Apply("t", "f1", []int{3}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.SessionRestored).Value(); got != 1 {
		t.Errorf("restored counter = %d, want 1", got)
	}
	if got := reg.Counter(obs.SessionEvicted).Value(); got != 3 {
		t.Errorf("evicted counter = %d, want 3", got)
	}
	// A session idle for under the TTL survives EvictIdle.
	if n := m.EvictIdle(time.Hour); n != 0 {
		t.Errorf("hour-TTL EvictIdle evicted %d fresh sessions", n)
	}
}

func TestTenantQuotas(t *testing.T) {
	m := newTestManager(t, Config{MaxSessionsPerTenant: 2, MaxSessions: 3})
	if _, _, err := m.Create("a", "a1", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Create("a", "a2", testSpec(2)); err != nil {
		t.Fatal(err)
	}
	// Tenant a is at its quota; tenant b is not disturbed.
	if _, _, err := m.Create("a", "a3", testSpec(3)); !errors.Is(err, ErrTenantSessions) {
		t.Errorf("over-quota create err = %v", err)
	}
	if _, _, err := m.Create("b", "b1", testSpec(4)); err != nil {
		t.Errorf("tenant b disturbed by tenant a's quota: %v", err)
	}
	// Global cap: the table is full now for everyone.
	if _, _, err := m.Create("c", "c1", testSpec(5)); !errors.Is(err, ErrSaturated) {
		t.Errorf("global-cap create err = %v", err)
	}
	// Dropping frees quota.
	if err := m.Drop("a", "a1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Create("a", "a4", testSpec(6)); err != nil {
		t.Errorf("create after drop: %v", err)
	}

	// Pending-event quota: the fairness bound on concurrent events.
	if err := m.reservePending("a"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < m.cfg.MaxPendingPerTenant; i++ {
		if err := m.reservePending("a"); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.reservePending("a"); !errors.Is(err, ErrTenantBusy) {
		t.Errorf("over-pending err = %v", err)
	}
	if err := m.reservePending("b"); err != nil {
		t.Errorf("tenant b disturbed by tenant a's pending: %v", err)
	}
}

func TestSubscribeReplayAndLive(t *testing.T) {
	m := newTestManager(t, Config{})
	if _, _, err := m.Create("t", "f", testSpec(2)); err != nil {
		t.Fatal(err)
	}
	d1, err := m.Apply("t", "f", []int{5})
	if err != nil {
		t.Fatal(err)
	}

	// Subscribe from 0: the ring (seq 0 and 1) replays immediately.
	ch, cancel, err := m.Subscribe("t", "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	got0 := <-ch
	got1 := <-ch
	if got0.Seq != 0 || got1.Seq != 1 {
		t.Fatalf("replayed seqs = %d, %d", got0.Seq, got1.Seq)
	}
	if !bytes.Equal(mustJSON(t, got1), mustJSON(t, d1)) {
		t.Error("replayed delta differs from the applied one")
	}

	// A live event arrives on the feed.
	d2, err := m.Apply("t", "f", []int{8})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case live := <-ch:
		if !bytes.Equal(mustJSON(t, live), mustJSON(t, d2)) {
			t.Error("live delta differs from the applied one")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live delta never arrived")
	}

	// A session with subscribers is not evictable.
	if err := m.Evict("t", "f"); !errors.Is(err, ErrSubscribed) {
		t.Errorf("evict with subscriber err = %v", err)
	}
	cancel()
	if err := m.Evict("t", "f"); err != nil {
		t.Errorf("evict after cancel: %v", err)
	}

	// Subscribing restores the evicted session and replays from fromSeq.
	ch2, cancel2, err := m.Subscribe("t", "f", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	re := <-ch2
	if re.Seq != 2 || !bytes.Equal(mustJSON(t, re), mustJSON(t, d2)) {
		t.Errorf("post-restore replay = %+v", re)
	}
}

func TestCloseUnblocksEverything(t *testing.T) {
	m := New(Config{Registry: obs.NewRegistry()})
	if _, _, err := m.Create("t", "f", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	ch, _, err := m.Subscribe("t", "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	<-ch // drain the seq-0 replay
	m.Close()
	select {
	case _, ok := <-ch:
		if ok {
			t.Error("unexpected delta after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber channel not closed on shutdown")
	}
	if _, err := m.Apply("t", "f", []int{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("apply after close err = %v", err)
	}
	if _, _, err := m.Create("t", "g", testSpec(2)); !errors.Is(err, ErrClosed) {
		t.Errorf("create after close err = %v", err)
	}
	m.Close() // idempotent
}

// TestSpecBuildMatchesFacade: the spec builder follows the facade's ID
// rules (explicit IDs verbatim, scattered after the largest explicit).
func TestSpecBuildMatchesFacade(t *testing.T) {
	sp := testSpec(7)
	sp.Sensors = []Sensor{{ID: 100, X: 5, Y: 5}, {ID: 3, X: 20, Y: 20}}
	sp.Scatter = 2
	d, err := sp.build()
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[int]bool)
	for _, s := range d.Sensors() {
		ids[s.ID] = true
	}
	for _, want := range []int{100, 3, 101, 102} {
		if !ids[want] {
			t.Errorf("missing sensor id %d in %v", want, ids)
		}
	}
	var bad Spec
	if _, err := bad.build(); err == nil {
		t.Error("zero spec must not build")
	}
}

package session

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"decor/internal/chaos"
	"decor/internal/obs"
)

// TestSessionSoak is the `make session-smoke` gate: a seeded
// multi-tenant soak driven by the chaos layer's failure traffic, applied
// concurrently across sessions (events stay ordered within a session),
// with idle evictions interleaved. Two full runs must produce
// byte-identical per-session delta streams — the live-replay determinism
// the whole subsystem is built on — and tenants must stay isolated.
// Run it under -race: the shard goroutines, quota table, and labeled
// instruments are all concurrent here.
func TestSessionSoak(t *testing.T) {
	const (
		tenants          = 3
		fieldsPerTenant  = 4
		eventsPerSession = 8
	)

	soak := func(runIdx int) map[string][]byte {
		m := newTestManager(t, Config{Shards: 4, MaxSessionsPerTenant: fieldsPerTenant})
		type sessionPlan struct {
			tenant, id string
			spec       Spec
			events     []chaos.FailureEvent
		}
		var plans []sessionPlan
		for ti := 0; ti < tenants; ti++ {
			for fi := 0; fi < fieldsPerTenant; fi++ {
				seed := uint64(1000 + ti*100 + fi)
				spec := testSpec(seed)
				// Scattered sensors take IDs 0..Scatter-1; the chaos
				// traffic plan fails a seeded subset of them, once each.
				ids := make([]int, spec.Scatter)
				for i := range ids {
					ids[i] = i
				}
				plan := chaos.BoundedPlan(chaos.DefaultScenario(chaos.ArchGrid, seed))
				plans = append(plans, sessionPlan{
					tenant: fmt.Sprintf("tenant-%d", ti),
					id:     fmt.Sprintf("field-%d-%d", ti, fi),
					spec:   spec,
					events: chaos.TrafficFromPlan(plan, ids, eventsPerSession),
				})
			}
		}

		streams := make([]bytes.Buffer, len(plans))
		var wg sync.WaitGroup
		wg.Add(len(plans))
		for i, p := range plans {
			go func(i int, p sessionPlan) {
				defer wg.Done()
				_, initial, err := m.Create(p.tenant, p.id, p.spec)
				if err != nil {
					t.Errorf("%s/%s create: %v", p.tenant, p.id, err)
					return
				}
				streams[i].Write(mustJSON(t, initial))
				streams[i].WriteByte('\n')
				for ei, ev := range p.events {
					d, err := m.Apply(p.tenant, p.id, ev.IDs)
					if err != nil {
						t.Errorf("%s/%s event %d: %v", p.tenant, p.id, ei, err)
						return
					}
					streams[i].Write(mustJSON(t, d))
					streams[i].WriteByte('\n')
					// Mid-stream eviction on a deterministic subset:
					// restore must be invisible in the delta bytes.
					if ei == eventsPerSession/2 && i%3 == runIdx%3 {
						// Ignore ErrSubscribed/ErrNotFound shaped races —
						// there are none here, so any error is real.
						if err := m.Evict(p.tenant, p.id); err != nil {
							t.Errorf("%s/%s evict: %v", p.tenant, p.id, err)
						}
					}
				}
			}(i, p)
		}
		wg.Wait()

		out := make(map[string][]byte, len(plans))
		for i, p := range plans {
			out[p.tenant+"/"+p.id] = streams[i].Bytes()
		}
		return out
	}

	// Two runs with different eviction points: byte-identical streams.
	a := soak(0)
	b := soak(1)
	if len(a) != len(b) {
		t.Fatalf("session counts differ: %d vs %d", len(a), len(b))
	}
	for key, sa := range a {
		if !bytes.Equal(sa, b[key]) {
			t.Errorf("%s: delta stream differs between runs", key)
		}
	}
}

// TestSoakQuotaIsolation floods one tenant past its quotas while a
// well-behaved tenant works; the victim tenant must see zero failures.
func TestSoakQuotaIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestManager(t, Config{
		Registry:             reg,
		MaxSessionsPerTenant: 2,
		MaxPendingPerTenant:  2,
	})
	if _, _, err := m.Create("good", "g1", testSpec(1)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the flood: creates far past the session quota
		defer wg.Done()
		for i := 0; i < 32; i++ {
			m.Create("noisy", fmt.Sprintf("n%d", i), testSpec(uint64(i)))
		}
	}()

	for i := 0; i < eventsForIsolation; i++ {
		if _, err := m.Apply("good", "g1", []int{i}); err != nil {
			t.Fatalf("good tenant disturbed at event %d: %v", i, err)
		}
	}
	wg.Wait()
	if got := reg.Counter(obs.SessionQuotaRejected).Value(); got < 1 {
		t.Errorf("quota rejections = %d, want >= 1 (the flood must have been clipped)", got)
	}
	if st := m.Stats(); st.Sessions > 3 {
		t.Errorf("noisy tenant exceeded its quota: %+v", st)
	}
}

const eventsForIsolation = 10

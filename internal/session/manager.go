package session

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"decor/internal/obs"
)

// Config sizes a Manager. The zero value gets production-shaped defaults
// from normalization.
type Config struct {
	// Shards is the number of session shard goroutines; every session is
	// pinned to one shard by consistent hash of its field ID, and all of
	// its operations execute on that shard's goroutine (the facade's
	// single-goroutine contract). Default: GOMAXPROCS.
	Shards int
	// MailboxDepth bounds each shard's pending-operation queue; a full
	// mailbox rejects with ErrSaturated (503). Default 256.
	MailboxDepth int
	// MaxSessions caps live+evicted sessions across all tenants (503 on
	// overflow). Default 4096.
	MaxSessions int
	// MaxSessionsPerTenant caps one tenant's sessions, live or evicted
	// (429 on overflow). Default 64.
	MaxSessionsPerTenant int
	// MaxPendingPerTenant caps one tenant's concurrently pending events
	// across all shards — the fairness bound that keeps one tenant from
	// monopolizing shard mailboxes (429 on overflow). Default 32.
	MaxPendingPerTenant int
	// RingDeltas is the per-session replay ring for SSE catch-up reads.
	// Default 64.
	RingDeltas int
	// IdleTTL evicts sessions idle longer than this to snapshots (0
	// disables the janitor; EvictIdle can still be called manually).
	IdleTTL time.Duration
	// DisableFastRestore forces every restore through full event-log
	// replay, ignoring the snapshot's binary fast section. The zero value
	// (fast restore ON) is the production shape; replay-only mode is the
	// differential oracle the fast path is tested against.
	DisableFastRestore bool
	// Registry receives the decor_session_* instruments (default:
	// obs.Default()).
	Registry *obs.Registry
}

func (c Config) normalized() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MailboxDepth <= 0 {
		c.MailboxDepth = 256
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.MaxSessionsPerTenant <= 0 {
		c.MaxSessionsPerTenant = 64
	}
	if c.MaxPendingPerTenant <= 0 {
		c.MaxPendingPerTenant = 32
	}
	if c.RingDeltas <= 0 {
		c.RingDeltas = 64
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	return c
}

// maxTenantLabels caps the tenant label cardinality on the session
// instruments, mirroring the service response counter's cap.
const maxTenantLabels = 64

// Manager owns every field session: a fixed set of shard goroutines,
// each confining its sessions' deployments, plus the tenant quota table
// shared by all shards. All methods are safe for concurrent use.
type Manager struct {
	cfg    Config
	shards []*shardLoop
	quit   chan struct{}
	wg     sync.WaitGroup

	// Tenant accounting: session counts (live + evicted) and pending
	// event counts, plus the global session total.
	tmu      sync.Mutex
	sessions map[string]int // per tenant
	pending  map[string]int // per tenant
	total    int
	labels   map[string]bool // capped tenant label values
	closed   bool

	now func() time.Time // test seam; never influences outputs

	gLive                                     *obs.Gauge
	cCreated, cEvicted, cRestored, cDropped   *obs.Counter
	cDeltas, cQuotaRejected, cSubsDropped     *obs.Counter
	hDeltaSeconds, hRestoreSeconds            *obs.Histogram
}

// New builds a Manager and starts its shard goroutines (and the idle
// janitor when IdleTTL is set).
func New(cfg Config) *Manager {
	cfg = cfg.normalized()
	m := &Manager{
		cfg:      cfg,
		quit:     make(chan struct{}),
		sessions: map[string]int{},
		pending:  map[string]int{},
		labels:   map[string]bool{},
		now:      time.Now,
	}
	r := cfg.Registry
	obs.RegisterSession(r)
	m.gLive = r.Gauge(obs.SessionLive)
	m.cCreated = r.Counter(obs.SessionCreated)
	m.cEvicted = r.Counter(obs.SessionEvicted)
	m.cRestored = r.Counter(obs.SessionRestored)
	m.cDropped = r.Counter(obs.SessionDropped)
	m.cDeltas = r.Counter(obs.SessionDeltas)
	m.cQuotaRejected = r.Counter(obs.SessionQuotaRejected)
	m.cSubsDropped = r.Counter(obs.SessionSubsDropped)
	m.hDeltaSeconds = r.Histogram(obs.SessionDeltaSeconds, obs.DefLatencyBuckets)
	m.hRestoreSeconds = r.Histogram(obs.SessionRestoreSeconds, obs.DefLatencyBuckets)

	m.shards = make([]*shardLoop, cfg.Shards)
	m.wg.Add(cfg.Shards)
	for i := range m.shards {
		sh := &shardLoop{
			m:        m,
			ops:      make(chan *op, cfg.MailboxDepth),
			live:     map[string]*state{},
			snapshot: map[string]snapEntry{},
		}
		m.shards[i] = sh
		go sh.run()
	}
	if cfg.IdleTTL > 0 {
		m.wg.Add(1)
		go m.janitor()
	}
	return m
}

func (m *Manager) janitor() {
	defer m.wg.Done()
	period := m.cfg.IdleTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.EvictIdle(m.cfg.IdleTTL)
		case <-m.quit:
			return
		}
	}
}

// tenantLabel maps a raw tenant to a bounded metric label value.
// Call with tmu held.
func (m *Manager) tenantLabelLocked(raw string) string {
	if raw == "" {
		return "none"
	}
	if m.labels[raw] {
		return raw
	}
	if len(m.labels) >= maxTenantLabels {
		return "other"
	}
	m.labels[raw] = true
	return raw
}

// tenantCounter bumps a per-tenant labeled counter under the cap.
func (m *Manager) tenantCounter(name, tenant string) {
	m.tmu.Lock()
	label := m.tenantLabelLocked(tenant)
	m.tmu.Unlock()
	r := m.cfg.Registry
	r.CounterL(name, r.Labels("tenant", label)).Inc()
}

// op is one session operation, executed on the owning shard's goroutine.
type op struct {
	kind    opKind
	tenant  string
	id      string
	spec    Spec
	failed  []int
	fromSeq uint64
	sub     chan Delta // subscribe: the delta feed; unsubscribe: identity
	ttl     time.Duration
	raw     []byte       // import: the snapshot to install
	reply   chan opReply // buffered(1): the shard never blocks on delivery
}

type opKind int

const (
	opCreate opKind = iota
	opApply
	opGet
	opDrop
	opSubscribe
	opUnsubscribe
	opEvictIdle
	opEvict
	opExport
	opImport
)

type opReply struct {
	delta   Delta
	info    Info
	cancel  func()
	err     error
	evicted int
	raw     []byte // export: the detached snapshot
}

// skey is the shard-map key for a session: field IDs are namespaced per
// tenant, so two tenants may use the same ID independently and neither
// can detect the other's choice of names.
func skey(tenant, id string) string { return tenant + "\x00" + id }

// shardFor pins a session key to a shard by FNV-1a hash. With the shard
// count fixed for a manager's lifetime, the pinning is consistent: the
// same field always lands on the same goroutine.
func (m *Manager) shardFor(key string) *shardLoop {
	h := fnv.New64a()
	h.Write([]byte(key))
	return m.shards[h.Sum64()%uint64(len(m.shards))]
}

// send dispatches o to the owning shard and waits for its reply.
func (m *Manager) send(sh *shardLoop, o *op) opReply {
	select {
	case sh.ops <- o:
	case <-m.quit:
		return opReply{err: ErrClosed}
	default:
		return opReply{err: ErrSaturated}
	}
	select {
	case r := <-o.reply:
		return r
	case <-m.quit:
		return opReply{err: ErrClosed}
	}
}

// Create builds a new session for tenant under fieldID and returns its
// initial restoration plan (Seq 0). Quotas are reserved up front so a
// flood of creates from one tenant cannot consume shard capacity that
// other tenants' events need.
func (m *Manager) Create(tenant, fieldID string, spec Spec) (Info, Delta, error) {
	if err := m.reserveSession(tenant); err != nil {
		m.cQuotaRejected.Inc()
		return Info{}, Delta{}, err
	}
	o := &op{kind: opCreate, tenant: tenant, id: fieldID, spec: spec, reply: make(chan opReply, 1)}
	r := m.send(m.shardFor(skey(tenant, fieldID)), o)
	if r.err != nil {
		m.releaseSession(tenant)
		return Info{}, Delta{}, r.err
	}
	m.cCreated.Inc()
	m.tenantCounter(obs.SessionTenantCreated, tenant)
	m.gLive.Add(1)
	return r.info, r.delta, nil
}

// Apply destroys the event's sensors in the tenant's session and returns
// the incremental repair delta. An evicted session is restored
// transparently first.
func (m *Manager) Apply(tenant, fieldID string, failed []int) (Delta, error) {
	if err := m.reservePending(tenant); err != nil {
		m.cQuotaRejected.Inc()
		return Delta{}, err
	}
	defer m.releasePending(tenant)
	o := &op{kind: opApply, tenant: tenant, id: fieldID, failed: failed, reply: make(chan opReply, 1)}
	r := m.send(m.shardFor(skey(tenant, fieldID)), o)
	if r.err != nil {
		return Delta{}, r.err
	}
	m.cDeltas.Inc()
	m.tenantCounter(obs.SessionTenantDeltas, tenant)
	return r.delta, nil
}

// Get returns session metadata without restoring an evicted session.
func (m *Manager) Get(tenant, fieldID string) (Info, error) {
	o := &op{kind: opGet, tenant: tenant, id: fieldID, reply: make(chan opReply, 1)}
	r := m.send(m.shardFor(skey(tenant, fieldID)), o)
	return r.info, r.err
}

// Drop removes the session (live or evicted) entirely.
func (m *Manager) Drop(tenant, fieldID string) error {
	o := &op{kind: opDrop, tenant: tenant, id: fieldID, reply: make(chan opReply, 1)}
	r := m.send(m.shardFor(skey(tenant, fieldID)), o)
	if r.err != nil {
		return r.err
	}
	m.releaseSession(tenant)
	m.cDropped.Inc()
	m.gLive.Add(-1)
	return nil
}

// Subscribe attaches a delta feed to the session: ring entries with
// Seq >= fromSeq are replayed immediately, then every new delta follows.
// The returned channel is closed when the subscriber falls behind or the
// session is dropped; cancel detaches (idempotent, never blocks the
// shard). An evicted session is restored transparently.
func (m *Manager) Subscribe(tenant, fieldID string, fromSeq uint64) (<-chan Delta, func(), error) {
	// Buffered to hold a full ring replay plus a burst of live deltas.
	ch := make(chan Delta, m.cfg.RingDeltas+16)
	o := &op{kind: opSubscribe, tenant: tenant, id: fieldID, fromSeq: fromSeq, sub: ch, reply: make(chan opReply, 1)}
	r := m.send(m.shardFor(skey(tenant, fieldID)), o)
	if r.err != nil {
		return nil, nil, r.err
	}
	return ch, r.cancel, nil
}

// Evict snapshots the session and releases its live state now,
// regardless of idle time (tests and admin tooling; the janitor uses
// EvictIdle). Sessions with active subscribers are not evictable.
func (m *Manager) Evict(tenant, fieldID string) error {
	o := &op{kind: opEvict, tenant: tenant, id: fieldID, reply: make(chan opReply, 1)}
	return m.send(m.shardFor(skey(tenant, fieldID)), o).err
}

// Export detaches the tenant's session — live or evicted — from this
// manager and returns its portable snapshot, the shard-to-shard (and
// manager-to-manager) migration primitive: Export here, Import there,
// and the delta stream continues byte-identically. A live session with
// active subscribers is not exportable (ErrSubscribed); evict-then-hand-
// off under a live SSE feed would silently drop its deltas.
func (m *Manager) Export(tenant, fieldID string) ([]byte, error) {
	o := &op{kind: opExport, tenant: tenant, id: fieldID, reply: make(chan opReply, 1)}
	r := m.send(m.shardFor(skey(tenant, fieldID)), o)
	if r.err != nil {
		return nil, r.err
	}
	m.releaseSession(tenant)
	m.gLive.Add(-1)
	return r.raw, nil
}

// Import installs an exported snapshot under tenant. The session lands
// in evicted form — the first event or subscribe restores it, taking the
// snapshot's fast path when enabled — and counts against the tenant's
// session quota immediately.
func (m *Manager) Import(tenant string, data []byte) error {
	var sn Snapshot
	if err := json.Unmarshal(data, &sn); err != nil {
		return fmt.Errorf("session: corrupt snapshot: %w", err)
	}
	if sn.Tenant != tenant {
		return ErrTenantMismatch
	}
	if sn.ID == "" {
		return fmt.Errorf("session: snapshot without field id")
	}
	if err := m.reserveSession(tenant); err != nil {
		m.cQuotaRejected.Inc()
		return err
	}
	o := &op{kind: opImport, tenant: tenant, id: sn.ID, raw: data, reply: make(chan opReply, 1)}
	r := m.send(m.shardFor(skey(tenant, sn.ID)), o)
	if r.err != nil {
		m.releaseSession(tenant)
		return r.err
	}
	m.gLive.Add(1)
	return nil
}

// EvictIdle snapshots and releases every session idle for at least ttl
// (and without active subscribers), returning how many were evicted.
func (m *Manager) EvictIdle(ttl time.Duration) int {
	n := 0
	for _, sh := range m.shards {
		o := &op{kind: opEvictIdle, ttl: ttl, reply: make(chan opReply, 1)}
		r := m.send(sh, o)
		n += r.evicted
	}
	return n
}

// Stats reports the manager's current occupancy.
type Stats struct {
	Sessions int `json:"sessions"` // live + evicted
	Tenants  int `json:"tenants"`
}

// Stats returns current occupancy totals.
func (m *Manager) Stats() Stats {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	return Stats{Sessions: m.total, Tenants: len(m.sessions)}
}

// Close shuts the manager down: shard goroutines exit, pending callers
// get ErrClosed, subscriber channels close. Session state is discarded —
// sessions are rebuildable by design (snapshots are replay logs), and
// durable persistence is a deliberate non-goal here.
func (m *Manager) Close() {
	m.tmu.Lock()
	if m.closed {
		m.tmu.Unlock()
		return
	}
	m.closed = true
	m.tmu.Unlock()
	close(m.quit)
	m.wg.Wait()
}

func (m *Manager) reserveSession(tenant string) error {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.total >= m.cfg.MaxSessions {
		return ErrSaturated
	}
	if m.sessions[tenant] >= m.cfg.MaxSessionsPerTenant {
		return ErrTenantSessions
	}
	m.sessions[tenant]++
	m.total++
	return nil
}

func (m *Manager) releaseSession(tenant string) {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	if m.sessions[tenant] > 0 {
		m.sessions[tenant]--
		if m.sessions[tenant] == 0 {
			delete(m.sessions, tenant)
		}
	}
	if m.total > 0 {
		m.total--
	}
}

func (m *Manager) reservePending(tenant string) error {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.pending[tenant] >= m.cfg.MaxPendingPerTenant {
		return ErrTenantBusy
	}
	m.pending[tenant]++
	return nil
}

func (m *Manager) releasePending(tenant string) {
	m.tmu.Lock()
	defer m.tmu.Unlock()
	if m.pending[tenant] > 0 {
		m.pending[tenant]--
		if m.pending[tenant] == 0 {
			delete(m.pending, tenant)
		}
	}
}

// snapEntry is an evicted session: its snapshot plus the owning tenant
// (checked before restore, so one tenant can never touch another's
// field even by guessing IDs).
type snapEntry struct {
	tenant string
	raw    []byte
}

// shardLoop owns a disjoint subset of sessions. Everything below run()
// executes on the shard goroutine only.
type shardLoop struct {
	m        *Manager
	ops      chan *op
	live     map[string]*state
	snapshot map[string]snapEntry
}

func (sh *shardLoop) run() {
	defer sh.m.wg.Done()
	for {
		select {
		case o := <-sh.ops:
			o.reply <- sh.handle(o)
		case <-sh.m.quit:
			// Close every subscriber so SSE handlers unblock promptly.
			for _, st := range sh.live {
				for _, ch := range st.subs {
					close(ch)
				}
			}
			return
		}
	}
}

// lookup resolves (tenant, id) to a live session, restoring from a
// snapshot when necessary. Keys are tenant-namespaced, so unknown IDs
// and other tenants' IDs are indistinguishable by construction; the
// tenant equality checks are defense in depth.
func (sh *shardLoop) lookup(tenant, id string) (*state, error) {
	k := skey(tenant, id)
	if st, ok := sh.live[k]; ok {
		if st.tenant != tenant {
			return nil, ErrNotFound
		}
		return st, nil
	}
	ent, ok := sh.snapshot[k]
	if !ok || ent.tenant != tenant {
		return nil, ErrNotFound
	}
	t0 := time.Now()
	st, err := restore(context.Background(), ent.raw, sh.m.cfg.RingDeltas, !sh.m.cfg.DisableFastRestore)
	if err != nil {
		return nil, err
	}
	sh.m.hRestoreSeconds.Observe(time.Since(t0).Seconds())
	delete(sh.snapshot, k)
	sh.live[k] = st
	sh.m.cRestored.Inc()
	return st, nil
}

func (sh *shardLoop) handle(o *op) opReply {
	k := skey(o.tenant, o.id)
	switch o.kind {
	case opCreate:
		if _, ok := sh.live[k]; ok {
			return opReply{err: ErrExists}
		}
		if _, ok := sh.snapshot[k]; ok {
			return opReply{err: ErrExists}
		}
		st, delta, err := newState(context.Background(), o.tenant, o.id, o.spec, sh.m.cfg.RingDeltas)
		if err != nil {
			return opReply{err: err}
		}
		st.lastUse = sh.m.now().UnixNano()
		sh.live[k] = st
		return opReply{info: st.info(false), delta: delta}

	case opApply:
		st, err := sh.lookup(o.tenant, o.id)
		if err != nil {
			return opReply{err: err}
		}
		t0 := time.Now()
		subsBefore := len(st.subs)
		delta, err := st.apply(context.Background(), o.failed, sh.m.cfg.RingDeltas)
		if err != nil {
			return opReply{err: err}
		}
		if dropped := subsBefore - len(st.subs); dropped > 0 {
			sh.m.cSubsDropped.Add(int64(dropped))
		}
		sh.m.hDeltaSeconds.Observe(time.Since(t0).Seconds())
		st.lastUse = sh.m.now().UnixNano()
		return opReply{delta: delta}

	case opGet:
		if st, ok := sh.live[k]; ok && st.tenant == o.tenant {
			return opReply{info: st.info(false)}
		}
		if ent, ok := sh.snapshot[k]; ok && ent.tenant == o.tenant {
			var snap Snapshot
			if err := json.Unmarshal(ent.raw, &snap); err != nil {
				return opReply{err: err}
			}
			return opReply{info: Info{
				FieldID: snap.ID,
				Tenant:  snap.Tenant,
				Seq:     uint64(len(snap.Events)),
				Evicted: true,
			}}
		}
		return opReply{err: ErrNotFound}

	case opDrop:
		if st, ok := sh.live[k]; ok && st.tenant == o.tenant {
			for _, ch := range st.subs {
				close(ch)
			}
			delete(sh.live, k)
			return opReply{}
		}
		if ent, ok := sh.snapshot[k]; ok && ent.tenant == o.tenant {
			delete(sh.snapshot, k)
			return opReply{}
		}
		return opReply{err: ErrNotFound}

	case opSubscribe:
		st, err := sh.lookup(o.tenant, o.id)
		if err != nil {
			return opReply{err: err}
		}
		for _, d := range st.ring {
			if d.Seq >= o.fromSeq {
				o.sub <- d // fits: buffer >= ring capacity
			}
		}
		key := st.nextSub
		st.nextSub++
		st.subs[key] = o.sub
		st.lastUse = sh.m.now().UnixNano()
		id := o.id
		cancel := func() {
			u := &op{kind: opUnsubscribe, tenant: o.tenant, id: id, fromSeq: uint64(key), reply: make(chan opReply, 1)}
			sh.m.send(sh, u)
		}
		return opReply{cancel: cancel}

	case opUnsubscribe:
		if st, ok := sh.live[k]; ok && st.tenant == o.tenant {
			key := int(o.fromSeq)
			if ch, ok := st.subs[key]; ok {
				close(ch)
				delete(st.subs, key)
			}
		}
		return opReply{}

	case opEvict:
		st, ok := sh.live[k]
		if !ok || st.tenant != o.tenant {
			return opReply{err: ErrNotFound}
		}
		if len(st.subs) > 0 {
			return opReply{err: ErrSubscribed}
		}
		sh.snapshot[k] = snapEntry{tenant: st.tenant, raw: st.snapshot()}
		delete(sh.live, k)
		sh.m.cEvicted.Inc()
		return opReply{}

	case opEvictIdle:
		cutoff := sh.m.now().Add(-o.ttl).UnixNano()
		n := 0
		for id, st := range sh.live {
			if len(st.subs) > 0 || st.lastUse > cutoff {
				continue
			}
			sh.snapshot[id] = snapEntry{tenant: st.tenant, raw: st.snapshot()}
			delete(sh.live, id)
			n++
		}
		if n > 0 {
			sh.m.cEvicted.Add(int64(n))
		}
		return opReply{evicted: n}

	case opExport:
		if st, ok := sh.live[k]; ok && st.tenant == o.tenant {
			if len(st.subs) > 0 {
				return opReply{err: ErrSubscribed}
			}
			raw := st.snapshot()
			delete(sh.live, k)
			sh.m.cEvicted.Inc()
			return opReply{raw: raw}
		}
		if ent, ok := sh.snapshot[k]; ok && ent.tenant == o.tenant {
			delete(sh.snapshot, k)
			return opReply{raw: ent.raw}
		}
		return opReply{err: ErrNotFound}

	case opImport:
		if _, ok := sh.live[k]; ok {
			return opReply{err: ErrExists}
		}
		if _, ok := sh.snapshot[k]; ok {
			return opReply{err: ErrExists}
		}
		sh.snapshot[k] = snapEntry{tenant: o.tenant, raw: o.raw}
		return opReply{}
	}
	return opReply{err: ErrNotFound}
}

// ErrSubscribed: eviction refused because live subscribers are attached.
var ErrSubscribed = errors.New("session: field has active subscribers")

// ErrTenantMismatch: Import of a snapshot owned by a different tenant.
var ErrTenantMismatch = errors.New("session: snapshot belongs to another tenant")

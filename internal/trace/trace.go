// Package trace serializes deployment runs as JSON Lines so external
// tooling (plotting, regression diffing, replay) can consume them. A
// trace is self-contained: a header record with the field parameters,
// one record per placement in order, and a footer with the run metrics.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/metrics"
	"decor/internal/obs"
)

// Record kinds.
const (
	KindHeader    = "header"
	KindPlacement = "placement"
	KindFooter    = "footer"
	// KindObs records an instrumentation snapshot (counters, gauges,
	// phase-latency histograms — see internal/obs). Obs records may appear
	// anywhere after the header, including after the footer, so a run can
	// append its final metrics once the deployment record is complete.
	// Traces written before this record kind existed parse unchanged, and
	// non-obs data after the footer is still left unconsumed (stream
	// reuse), exactly as before.
	KindObs = "obs"
)

// Header describes the run configuration.
type Header struct {
	Kind      string  `json:"kind"`
	Method    string  `json:"method"`
	K         int     `json:"k"`
	Rs        float64 `json:"rs"`
	FieldW    float64 `json:"field_w"`
	FieldH    float64 `json:"field_h"`
	NumPoints int     `json:"num_points"`
	Initial   int     `json:"initial_sensors"`
}

// PlacementRec is one deployed sensor.
type PlacementRec struct {
	Kind  string  `json:"kind"`
	Seq   int     `json:"seq"`
	ID    int     `json:"id"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Round int     `json:"round"`
}

// Footer carries the run's final metrics.
type Footer struct {
	Kind            string  `json:"kind"`
	Placed          int     `json:"placed"`
	TotalNodes      int     `json:"total_nodes"`
	RedundantNodes  int     `json:"redundant_nodes"`
	Messages        int     `json:"messages"`
	MessagesPerCell float64 `json:"messages_per_cell"`
	Rounds          int     `json:"rounds"`
	Seeded          int     `json:"seeded"`
	CoverageK       float64 `json:"coverage_k"`
}

// ObsRec carries one instrumentation snapshot captured during or after
// the run.
type ObsRec struct {
	Kind string       `json:"kind"`
	Obs  obs.Snapshot `json:"obs"`
}

// Trace is a parsed run record.
type Trace struct {
	Header     Header
	Placements []PlacementRec
	Footer     Footer
	// Obs holds any instrumentation snapshots found in the trace, in file
	// order (empty for seed-format traces).
	Obs []ObsRec
}

// Write serializes a finished run. The map must be in its post-run
// state (Collect reads coverage and redundancy from it).
func Write(w io.Writer, m *coverage.Map, res core.Result) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	dep := metrics.Collect(m, res)
	head := Header{
		Kind: KindHeader, Method: res.Method, K: m.K(), Rs: m.Rs(),
		FieldW: m.Field().W(), FieldH: m.Field().H(),
		NumPoints: m.NumPoints(),
		Initial:   m.NumSensors() - res.NumPlaced(),
	}
	if err := enc.Encode(head); err != nil {
		return err
	}
	for i, pl := range res.Placed {
		rec := PlacementRec{Kind: KindPlacement, Seq: i, ID: pl.ID, X: pl.Pos.X, Y: pl.Pos.Y, Round: pl.Round}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	foot := Footer{
		Kind: KindFooter, Placed: dep.PlacedNodes, TotalNodes: dep.TotalNodes,
		RedundantNodes: dep.RedundantNodes, Messages: dep.Messages,
		MessagesPerCell: dep.MessagesPerCell, Rounds: dep.Rounds,
		Seeded: dep.Seeded, CoverageK: dep.CoverageK,
	}
	if err := enc.Encode(foot); err != nil {
		return err
	}
	return bw.Flush()
}

// AppendObs appends an instrumentation-snapshot record to a trace stream.
// Call it after Write (or between placements, for per-phase snapshots)
// with the same writer.
func AppendObs(w io.Writer, snap obs.Snapshot) error {
	return json.NewEncoder(w).Encode(ObsRec{Kind: KindObs, Obs: snap})
}

// Read parses a trace written by Write. It validates record ordering and
// placement sequence numbers.
func Read(r io.Reader) (Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	// Header.
	var probe struct {
		Kind string `json:"kind"`
	}
	raw := json.RawMessage{}
	state := 0 // 0=expect header, 1=placements/footer, 2=after footer
	for {
		if err := dec.Decode(&raw); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			if state == 2 {
				break // trailing non-trace data after the footer (stream reuse)
			}
			return t, err
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			if state == 2 {
				break
			}
			return t, err
		}
		if state == 2 && probe.Kind != KindObs {
			// Past the footer only appended obs records belong to this
			// trace; anything else is the next stream's data.
			break
		}
		switch probe.Kind {
		case KindHeader:
			if state != 0 {
				return t, errors.New("trace: duplicate header")
			}
			if err := json.Unmarshal(raw, &t.Header); err != nil {
				return t, err
			}
			state = 1
		case KindPlacement:
			if state != 1 {
				return t, errors.New("trace: placement outside body")
			}
			var rec PlacementRec
			if err := json.Unmarshal(raw, &rec); err != nil {
				return t, err
			}
			if rec.Seq != len(t.Placements) {
				return t, fmt.Errorf("trace: placement seq %d out of order", rec.Seq)
			}
			t.Placements = append(t.Placements, rec)
		case KindFooter:
			if state == 0 {
				return t, errors.New("trace: footer without header")
			}
			if err := json.Unmarshal(raw, &t.Footer); err != nil {
				return t, err
			}
			state = 2
		case KindObs:
			if state == 0 {
				return t, errors.New("trace: obs record before header")
			}
			var rec ObsRec
			if err := json.Unmarshal(raw, &rec); err != nil {
				return t, err
			}
			t.Obs = append(t.Obs, rec)
		default:
			return t, fmt.Errorf("trace: unknown record kind %q", probe.Kind)
		}
	}
	if state != 2 {
		return t, errors.New("trace: truncated (missing footer)")
	}
	if t.Footer.Placed != len(t.Placements) {
		return t, fmt.Errorf("trace: footer claims %d placements, found %d",
			t.Footer.Placed, len(t.Placements))
	}
	return t, nil
}

// Replay applies the trace's placements onto a coverage map built by the
// caller to match the header (same field, points, rs, k, and initial
// sensors), returning the map's coverage at the end. Every header
// parameter the map can express is validated; the error names the first
// mismatched field.
func Replay(m *coverage.Map, t Trace) (float64, error) {
	h := t.Header
	switch {
	case m.K() != h.K:
		return 0, fmt.Errorf("trace: map k=%d does not match header k=%d", m.K(), h.K)
	case m.NumPoints() != h.NumPoints:
		return 0, fmt.Errorf("trace: map has %d points, header declares num_points=%d", m.NumPoints(), h.NumPoints)
	case m.Rs() != h.Rs:
		return 0, fmt.Errorf("trace: map rs=%g does not match header rs=%g", m.Rs(), h.Rs)
	case m.Field().W() != h.FieldW:
		return 0, fmt.Errorf("trace: map field width %g does not match header field_w=%g", m.Field().W(), h.FieldW)
	case m.Field().H() != h.FieldH:
		return 0, fmt.Errorf("trace: map field height %g does not match header field_h=%g", m.Field().H(), h.FieldH)
	}
	for _, rec := range t.Placements {
		m.AddSensor(rec.ID, geom.Point{X: rec.X, Y: rec.Y})
	}
	return m.CoverageFrac(m.K()), nil
}

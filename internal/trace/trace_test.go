package trace

import (
	"bytes"
	"strings"
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

func runDeployment(t *testing.T) (*coverage.Map, core.Result, func() *coverage.Map) {
	t.Helper()
	field := geom.Square(40)
	pts := lowdisc.Halton{}.Points(300, field)
	build := func() *coverage.Map {
		m := coverage.New(field, pts, 4, 2)
		r := rng.New(3)
		for id := 0; id < 25; id++ {
			m.AddSensor(id, r.PointInRect(field))
		}
		return m
	}
	m := build()
	res := (core.VoronoiDECOR{Rc: 8}).Deploy(m, rng.New(4), core.Options{})
	return m, res, build
}

func TestWriteReadRoundTrip(t *testing.T) {
	m, res, _ := runDeployment(t)
	var buf bytes.Buffer
	if err := Write(&buf, m, res); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Method != "voronoi-small" || tr.Header.K != 2 || tr.Header.NumPoints != 300 {
		t.Errorf("header = %+v", tr.Header)
	}
	if tr.Header.Initial != 25 {
		t.Errorf("initial = %d", tr.Header.Initial)
	}
	if len(tr.Placements) != res.NumPlaced() {
		t.Fatalf("placements = %d, want %d", len(tr.Placements), res.NumPlaced())
	}
	for i, rec := range tr.Placements {
		if rec.ID != res.Placed[i].ID || rec.X != res.Placed[i].Pos.X {
			t.Fatalf("placement %d mismatch", i)
		}
	}
	if tr.Footer.CoverageK != 1 {
		t.Errorf("footer coverage = %v", tr.Footer.CoverageK)
	}
	if tr.Footer.Messages != res.Messages {
		t.Errorf("footer messages = %d", tr.Footer.Messages)
	}
}

func TestReplayReachesRecordedCoverage(t *testing.T) {
	m, res, build := runDeployment(t)
	var buf bytes.Buffer
	if err := Write(&buf, m, res); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fresh := build()
	cov, err := Replay(fresh, tr)
	if err != nil {
		t.Fatal(err)
	}
	if cov != 1 {
		t.Errorf("replayed coverage = %v, want 1", cov)
	}
	if fresh.NumSensors() != m.NumSensors() {
		t.Errorf("replayed sensors = %d, want %d", fresh.NumSensors(), m.NumSensors())
	}
}

func TestReplayRejectsMismatchedMap(t *testing.T) {
	m, res, _ := runDeployment(t)
	var buf bytes.Buffer
	if err := Write(&buf, m, res); err != nil {
		t.Fatal(err)
	}
	tr, _ := Read(&buf)
	wrong := coverage.New(geom.Square(40), lowdisc.Halton{}.Points(100, geom.Square(40)), 4, 2)
	if _, err := Replay(wrong, tr); err == nil {
		t.Error("mismatched map should be rejected")
	}
}

func TestReadRejectsMalformedTraces(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"no header":         `{"kind":"placement","seq":0,"id":1,"x":1,"y":2,"round":0}` + "\n",
		"unknown kind":      `{"kind":"mystery"}` + "\n",
		"missing footer":    `{"kind":"header","method":"x","k":1}` + "\n",
		"bad seq":           `{"kind":"header","method":"x","k":1}` + "\n" + `{"kind":"placement","seq":5}` + "\n",
		"double header":     `{"kind":"header"}` + "\n" + `{"kind":"header"}` + "\n",
		"footer count lies": `{"kind":"header"}` + "\n" + `{"kind":"footer","placed":3}` + "\n",
		"not json":          "hello\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadStopsAtFooter(t *testing.T) {
	// Trailing garbage after the footer is ignored (stream reuse).
	in := `{"kind":"header","method":"x","k":1}` + "\n" +
		`{"kind":"footer","placed":0}` + "\n" +
		"TRAILING GARBAGE"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if tr.Header.Method != "x" {
		t.Error("header lost")
	}
}

package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/obs"
	"decor/internal/protocol"
	"decor/internal/rng"
	"decor/internal/sim"
)

func runDeployment(t *testing.T) (*coverage.Map, core.Result, func() *coverage.Map) {
	t.Helper()
	field := geom.Square(40)
	pts := lowdisc.Halton{}.Points(300, field)
	build := func() *coverage.Map {
		m := coverage.New(field, pts, 4, 2)
		r := rng.New(3)
		for id := 0; id < 25; id++ {
			m.AddSensor(id, r.PointInRect(field))
		}
		return m
	}
	m := build()
	res := (core.VoronoiDECOR{Rc: 8}).Deploy(m, rng.New(4), core.Options{})
	return m, res, build
}

func TestWriteReadRoundTrip(t *testing.T) {
	m, res, _ := runDeployment(t)
	var buf bytes.Buffer
	if err := Write(&buf, m, res); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Method != "voronoi-small" || tr.Header.K != 2 || tr.Header.NumPoints != 300 {
		t.Errorf("header = %+v", tr.Header)
	}
	if tr.Header.Initial != 25 {
		t.Errorf("initial = %d", tr.Header.Initial)
	}
	if len(tr.Placements) != res.NumPlaced() {
		t.Fatalf("placements = %d, want %d", len(tr.Placements), res.NumPlaced())
	}
	for i, rec := range tr.Placements {
		if rec.ID != res.Placed[i].ID || rec.X != res.Placed[i].Pos.X {
			t.Fatalf("placement %d mismatch", i)
		}
	}
	if tr.Footer.CoverageK != 1 {
		t.Errorf("footer coverage = %v", tr.Footer.CoverageK)
	}
	if tr.Footer.Messages != res.Messages {
		t.Errorf("footer messages = %d", tr.Footer.Messages)
	}
}

func TestReplayReachesRecordedCoverage(t *testing.T) {
	m, res, build := runDeployment(t)
	var buf bytes.Buffer
	if err := Write(&buf, m, res); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fresh := build()
	cov, err := Replay(fresh, tr)
	if err != nil {
		t.Fatal(err)
	}
	if cov != 1 {
		t.Errorf("replayed coverage = %v, want 1", cov)
	}
	if fresh.NumSensors() != m.NumSensors() {
		t.Errorf("replayed sensors = %d, want %d", fresh.NumSensors(), m.NumSensors())
	}
}

// A chaos run — event-driven grid deployment under delay, duplication,
// burst loss, a leader crash, and a partition — must serialize through
// the trace format and replay onto a fresh map with IDENTICAL final
// per-point coverage counts, not merely the same coverage fraction. The
// trace is the post-mortem artifact for failing chaos seeds, so it has
// to reproduce the world exactly.
func TestChaosRunTraceReplaysIdenticalCoverage(t *testing.T) {
	field := geom.Square(30)
	pts := lowdisc.Halton{}.Points(120, field)
	build := func() *coverage.Map { return coverage.New(field, pts, 4, 2) }

	m := build()
	eng := sim.NewEngine(0.05)
	eng.SetLossRate(0.15, 5)
	eng.SetFaults(sim.FaultPlan{
		Seed:      5,
		DelayProb: 0.3, DelayMax: 1.5,
		DupProb: 0.2,
		Burst:   &sim.GilbertElliott{PGoodToBad: 0.1, PBadToGood: 0.3, LossBad: 0.7},
		Until:   25,
		Crashes: []sim.Crash{{Actor: protocol.LeaderActor(2), At: 3, RestartAt: 8}},
		Partitions: []sim.Partition{{
			From: 1, Until: 10,
			A: []int{protocol.LeaderActor(0)},
			B: []int{protocol.LeaderActor(4), protocol.LeaderActor(5)},
		}},
	})
	w := protocol.NewWorld(m, 5, eng, 1)
	seeds := protocol.RunDeployment(w)
	if !m.FullyCovered() {
		t.Fatal("chaos deployment did not converge")
	}

	res := core.Result{Method: "grid-small", Messages: w.MessagesSent, Seeded: seeds}
	for i, pl := range w.PlacementLog {
		res.Placed = append(res.Placed, core.Placement{ID: pl.NewID, Pos: pl.Pos, Round: i})
	}
	var buf bytes.Buffer
	if err := Write(&buf, m, res); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Initial != 0 {
		t.Errorf("chaos run logs every placement; header initial = %d", tr.Header.Initial)
	}

	fresh := build()
	cov, err := Replay(fresh, tr)
	if err != nil {
		t.Fatal(err)
	}
	if cov != 1 {
		t.Errorf("replayed coverage = %v, want 1", cov)
	}
	if fresh.NumSensors() != m.NumSensors() {
		t.Fatalf("replayed sensors = %d, want %d", fresh.NumSensors(), m.NumSensors())
	}
	for i := 0; i < m.NumPoints(); i++ {
		if fresh.Count(i) != m.Count(i) {
			t.Fatalf("point %d: replayed count %d != live count %d", i, fresh.Count(i), m.Count(i))
		}
	}
}

func TestReplayRejectsMismatchedMap(t *testing.T) {
	m, res, _ := runDeployment(t)
	var buf bytes.Buffer
	if err := Write(&buf, m, res); err != nil {
		t.Fatal(err)
	}
	tr, _ := Read(&buf)
	wrong := coverage.New(geom.Square(40), lowdisc.Halton{}.Points(100, geom.Square(40)), 4, 2)
	if _, err := Replay(wrong, tr); err == nil {
		t.Error("mismatched map should be rejected")
	}
}

func TestReadRejectsMalformedTraces(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"no header":         `{"kind":"placement","seq":0,"id":1,"x":1,"y":2,"round":0}` + "\n",
		"unknown kind":      `{"kind":"mystery"}` + "\n",
		"missing footer":    `{"kind":"header","method":"x","k":1}` + "\n",
		"bad seq":           `{"kind":"header","method":"x","k":1}` + "\n" + `{"kind":"placement","seq":5}` + "\n",
		"double header":     `{"kind":"header"}` + "\n" + `{"kind":"header"}` + "\n",
		"footer count lies": `{"kind":"header"}` + "\n" + `{"kind":"footer","placed":3}` + "\n",
		"not json":          "hello\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadStopsAtFooter(t *testing.T) {
	// Trailing garbage after the footer is ignored (stream reuse).
	in := `{"kind":"header","method":"x","k":1}` + "\n" +
		`{"kind":"footer","placed":0}` + "\n" +
		"TRAILING GARBAGE"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if tr.Header.Method != "x" {
		t.Error("header lost")
	}
}

func TestObsRecordRoundTrip(t *testing.T) {
	m, res, _ := runDeployment(t)
	reg := obs.NewRegistry()
	reg.Counter("decor_sim_events_total").Add(42)
	reg.Gauge("decor_sim_queue_depth").Set(7)
	reg.Histogram("decor_core_round_seconds", []float64{0.001, 1}).Observe(0.01)
	snap := reg.Snapshot()

	var buf bytes.Buffer
	if err := Write(&buf, m, res); err != nil {
		t.Fatal(err)
	}
	if err := AppendObs(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if err := AppendObs(&buf, snap); err != nil { // multiple snapshots are fine
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Obs) != 2 {
		t.Fatalf("obs records = %d, want 2", len(tr.Obs))
	}
	got := tr.Obs[0].Obs
	if !reflect.DeepEqual(got, snap) {
		t.Errorf("obs snapshot round trip mismatch:\n got %+v\nwant %+v", got, snap)
	}
	if len(tr.Placements) != res.NumPlaced() {
		t.Errorf("placements lost alongside obs records")
	}
}

func TestObsRecordInBody(t *testing.T) {
	in := `{"kind":"header","method":"x","k":1}` + "\n" +
		`{"kind":"obs","obs":{"counters":{"c_total":3}}}` + "\n" +
		`{"kind":"footer","placed":0}` + "\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Obs) != 1 || tr.Obs[0].Obs.Counters["c_total"] != 3 {
		t.Errorf("obs = %+v", tr.Obs)
	}
}

func TestObsRecordBeforeHeaderRejected(t *testing.T) {
	in := `{"kind":"obs","obs":{}}` + "\n" + `{"kind":"header","k":1}` + "\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Error("obs before header should be rejected")
	}
}

// TestSeedFormatTraceStillParses pins backward compatibility: a trace in
// the exact pre-obs format (header, placements, footer, nothing else)
// must parse unchanged.
func TestSeedFormatTraceStillParses(t *testing.T) {
	in := `{"kind":"header","method":"voronoi-small","k":2,"rs":4,"field_w":40,"field_h":40,"num_points":300,"initial_sensors":25}` + "\n" +
		`{"kind":"placement","seq":0,"id":25,"x":1.5,"y":2.5,"round":0}` + "\n" +
		`{"kind":"placement","seq":1,"id":26,"x":3,"y":4,"round":1}` + "\n" +
		`{"kind":"footer","placed":2,"total_nodes":27,"redundant_nodes":0,"messages":9,"messages_per_cell":0.3,"rounds":2,"seeded":0,"coverage_k":1}` + "\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Placements) != 2 || tr.Footer.Messages != 9 || len(tr.Obs) != 0 {
		t.Errorf("seed-format trace parsed wrong: %+v", tr)
	}
}

// TestReplayNamesMismatchedField checks that each Replay validation
// failure names the offending header field.
func TestReplayNamesMismatchedField(t *testing.T) {
	field := geom.Square(40)
	pts := lowdisc.Halton{}.Points(300, field)
	base := Header{Kind: KindHeader, K: 2, Rs: 4, FieldW: 40, FieldH: 40, NumPoints: 300}
	cases := []struct {
		name   string
		mutate func(*Header)
		want   string
	}{
		{"k", func(h *Header) { h.K = 3 }, "k="},
		{"points", func(h *Header) { h.NumPoints = 100 }, "num_points="},
		{"rs", func(h *Header) { h.Rs = 5 }, "rs="},
		{"field_w", func(h *Header) { h.FieldW = 50 }, "field_w="},
		{"field_h", func(h *Header) { h.FieldH = 50 }, "field_h="},
	}
	for _, tc := range cases {
		h := base
		tc.mutate(&h)
		m := coverage.New(field, pts, 4, 2)
		_, err := Replay(m, Trace{Header: h})
		if err == nil {
			t.Errorf("%s: mismatch not rejected", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name field %q", tc.name, err, tc.want)
		}
	}
	// A fully matching header replays fine.
	m := coverage.New(field, pts, 4, 2)
	if _, err := Replay(m, Trace{Header: base}); err != nil {
		t.Errorf("matching header rejected: %v", err)
	}
}

package energy

import (
	"math"
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
)

func TestModelCosts(t *testing.T) {
	m := Default()
	// TX at distance 0 equals pure electronics cost, which equals RX.
	if got, want := m.TxCost(0), m.RxCost(); got != want {
		t.Errorf("TxCost(0) = %v, RxCost = %v", got, want)
	}
	// TX grows quadratically with distance.
	d1, d2 := m.TxCost(10)-m.TxCost(0), m.TxCost(20)-m.TxCost(0)
	if math.Abs(d2/d1-4) > 1e-9 {
		t.Errorf("amplifier term not quadratic: %v vs %v", d1, d2)
	}
	// LEACH numbers: 2000 bits at 50nJ/bit = 100 µJ electronics.
	if got := m.RxCost(); math.Abs(got-100e-6) > 1e-12 {
		t.Errorf("RxCost = %v, want 100e-6", got)
	}
}

func TestAccountant(t *testing.T) {
	a := NewAccountant(Default(), 1e-3)
	a.ChargeTx(1, 10)
	a.ChargeRx(1)
	a.ChargeActive(1, 5)
	a.ChargeSleep(1, 5)
	want := Default().TxCost(10) + Default().RxCost() + 5*Default().ActivePerSec + 5*Default().SleepPerSec
	if got := a.Spent(1); math.Abs(got-want) > 1e-18 {
		t.Errorf("Spent = %v, want %v", got, want)
	}
	if a.Depleted(1) {
		t.Error("node should not be depleted")
	}
	if got := a.Remaining(1); math.Abs(got-(1e-3-want)) > 1e-18 {
		t.Errorf("Remaining = %v", got)
	}
	// Drain it.
	a.ChargeActive(1, 1e6)
	if !a.Depleted(1) || a.Remaining(1) != 0 {
		t.Error("node should be depleted with zero remaining")
	}
	if dead := a.DeadNodes(); len(dead) != 1 || dead[0] != 1 {
		t.Errorf("DeadNodes = %v", dead)
	}
	// Untouched node.
	if a.Depleted(2) || a.Spent(2) != 0 {
		t.Error("fresh node state wrong")
	}
}

func TestNewAccountantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity should panic")
		}
	}()
	NewAccountant(Default(), 0)
}

func TestDeploymentCost(t *testing.T) {
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(500, field)
	m := coverage.New(field, pts, 4, 2)
	r := rng.New(3)
	for id := 0; id < 40; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	res := (core.VoronoiDECOR{Rc: 8}).Deploy(m, rng.New(4), core.Options{})
	perNode, total := DeploymentCost(m, res, Default(), 8)
	if total <= 0 {
		t.Fatal("no deployment energy accounted")
	}
	sum := 0.0
	for id, e := range perNode {
		if e < 0 {
			t.Fatalf("negative energy for node %d", id)
		}
		sum += e
	}
	if math.Abs(sum-total) > total*1e-12 {
		t.Errorf("per-node sum %v != total %v", sum, total)
	}
	// Sanity scale: each message costs ~100-110 µJ TX; receivers add
	// ~100 µJ each. Total for a few thousand messages stays under 10 J.
	if total > 10 {
		t.Errorf("total deployment energy implausibly high: %v J", total)
	}
	// A centralized run has no messages and hence no cost.
	m2 := coverage.New(field, pts, 4, 2)
	res2 := (core.Centralized{}).Deploy(m2, rng.New(4), core.Options{})
	if _, tot2 := DeploymentCost(m2, res2, Default(), 8); tot2 != 0 {
		t.Errorf("centralized deployment energy = %v, want 0", tot2)
	}
}

func TestLifetimeEpochsScalesWithCovers(t *testing.T) {
	model := Default()
	const capacity = 1e-3 // small battery so the test is fast
	const epochSec = 10
	one := LifetimeEpochs([][]int{{1, 2, 3}}, model, capacity, epochSec, 8, 2)
	if one == 0 {
		t.Fatal("single cover should survive at least one epoch")
	}
	three := LifetimeEpochs([][]int{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}, model, capacity, epochSec, 8, 2)
	// Three disjoint covers should last roughly 3x as long: each node is
	// awake only every third epoch.
	ratio := float64(three) / float64(one)
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("lifetime ratio = %v (epochs %d vs %d), want ~3", ratio, three, one)
	}
}

func TestLifetimeEpochsDegenerate(t *testing.T) {
	if LifetimeEpochs(nil, Default(), 1, 1, 8, 1) != 0 {
		t.Error("no covers should mean zero lifetime")
	}
	if LifetimeEpochs([][]int{{1}}, Default(), 0, 1, 8, 1) != 0 {
		t.Error("zero capacity should mean zero lifetime")
	}
}

// Leader rotation balances energy: with rotation, the max per-node
// message count in a grid deployment stays near the mean; pin this by
// accounting a real run's NodeMessages.
func TestRotationSpreadsEnergy(t *testing.T) {
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(500, field)
	m := coverage.New(field, pts, 4, 3)
	r := rng.New(7)
	for id := 0; id < 60; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	res := (core.GridDECOR{CellSize: 5}).Deploy(m, rng.New(8), core.Options{})
	if len(res.NodeMessages) < 10 {
		t.Skip("too few talkative nodes to measure balance")
	}
	maxMsgs, sum := 0, 0
	for _, n := range res.NodeMessages {
		if n > maxMsgs {
			maxMsgs = n
		}
		sum += n
	}
	mean := float64(sum) / float64(len(res.NodeMessages))
	if float64(maxMsgs) > 25*mean {
		t.Errorf("rotation failed to spread load: max %d vs mean %.1f", maxMsgs, mean)
	}
}

// Package energy models sensor energy consumption with the first-order
// radio model of Heinzelman et al. (HICSS 2000) — the paper's reference
// [6], which it cites for energy-aware leader rotation. It quantifies
// two claims of the paper: that DECOR's message-light protocol preserves
// energy, and that k-coverage extends network lifetime by letting
// redundant covers sleep (§1, application 3).
package energy

import (
	"sort"

	"decor/internal/core"
	"decor/internal/coverage"
)

// Model holds the radio/duty-cycle cost parameters.
type Model struct {
	// ElecPerBit is the electronics energy per bit for both TX and RX
	// (LEACH: 50 nJ/bit).
	ElecPerBit float64
	// AmpPerBitM2 is the transmit amplifier energy per bit per square
	// meter (LEACH: 100 pJ/bit/m²).
	AmpPerBitM2 float64
	// MessageBits is the size of one protocol message (LEACH: 2000).
	MessageBits float64
	// ActivePerSec is the sensing+processing drain of an awake node.
	ActivePerSec float64
	// SleepPerSec is the drain of a sleeping node.
	SleepPerSec float64
}

// Default returns the LEACH parameterization with a 10 µW active and
// 10 nW sleep drain.
func Default() Model {
	return Model{
		ElecPerBit:   50e-9,
		AmpPerBitM2:  100e-12,
		MessageBits:  2000,
		ActivePerSec: 10e-6,
		SleepPerSec:  10e-9,
	}
}

// TxCost returns the energy to transmit one message over distance d.
func (m Model) TxCost(d float64) float64 {
	return m.MessageBits * (m.ElecPerBit + m.AmpPerBitM2*d*d)
}

// RxCost returns the energy to receive one message.
func (m Model) RxCost() float64 {
	return m.MessageBits * m.ElecPerBit
}

// Accountant tracks per-node energy budgets.
type Accountant struct {
	model    Model
	capacity float64
	spent    map[int]float64
}

// NewAccountant creates an accountant where every node starts with
// capacity joules. capacity must be positive.
func NewAccountant(model Model, capacity float64) *Accountant {
	if capacity <= 0 {
		panic("energy: capacity must be positive")
	}
	return &Accountant{model: model, capacity: capacity, spent: map[int]float64{}}
}

// ChargeTx debits one transmission over distance d.
func (a *Accountant) ChargeTx(id int, d float64) { a.spent[id] += a.model.TxCost(d) }

// ChargeRx debits one reception.
func (a *Accountant) ChargeRx(id int) { a.spent[id] += a.model.RxCost() }

// ChargeActive debits dur seconds of awake operation.
func (a *Accountant) ChargeActive(id int, dur float64) {
	a.spent[id] += a.model.ActivePerSec * dur
}

// ChargeSleep debits dur seconds of sleep.
func (a *Accountant) ChargeSleep(id int, dur float64) {
	a.spent[id] += a.model.SleepPerSec * dur
}

// Spent returns the energy node id has consumed.
func (a *Accountant) Spent(id int) float64 { return a.spent[id] }

// Remaining returns the node's remaining budget (never negative).
func (a *Accountant) Remaining(id int) float64 {
	r := a.capacity - a.spent[id]
	if r < 0 {
		return 0
	}
	return r
}

// Depleted reports whether the node has exhausted its budget.
func (a *Accountant) Depleted(id int) bool { return a.spent[id] >= a.capacity }

// DeadNodes returns all depleted nodes, ascending.
func (a *Accountant) DeadNodes() []int {
	var out []int
	for id := range a.spent {
		if a.Depleted(id) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// DeploymentCost estimates the radio energy of a finished deployment
// run: every protocol message is one broadcast at range rc by its
// sender, received by the sender's communication neighbors at that
// time. Receiver counts are approximated with the final topology (the
// network only grows during deployment, so this is an upper bound).
// Returns energy per node for nodes that transmitted, plus the total.
func DeploymentCost(m *coverage.Map, res core.Result, model Model, rc float64) (perNode map[int]float64, total float64) {
	perNode = make(map[int]float64, len(res.NodeMessages))
	for id, msgs := range res.NodeMessages {
		pos, ok := m.SensorPos(id)
		cost := model.TxCost(rc) * float64(msgs)
		if ok {
			receivers := len(m.SensorsInBall(pos, rc)) - 1
			if receivers > 0 {
				cost += model.RxCost() * float64(msgs*receivers)
			}
		}
		perNode[id] = cost
		total += cost
	}
	return perNode, total
}

// LifetimeEpochs simulates duty-cycle rotation across disjoint covers:
// in each epoch of epochSec seconds exactly one cover is awake (round
// robin) and everyone else sleeps; heartbeats cost each awake node
// hbPerEpoch transmissions at range rc. It returns the number of whole
// epochs until the first awake node would die — the lifetime multiple
// k-coverage buys (paper §1, application 3).
func LifetimeEpochs(covers [][]int, model Model, capacity, epochSec, rc float64, hbPerEpoch int) int {
	if len(covers) == 0 || capacity <= 0 {
		return 0
	}
	acct := NewAccountant(model, capacity)
	all := map[int]bool{}
	for _, cover := range covers {
		for _, id := range cover {
			all[id] = true
		}
	}
	epochCostActive := model.ActivePerSec*epochSec + float64(hbPerEpoch)*model.TxCost(rc)
	epochCostSleep := model.SleepPerSec * epochSec
	for epoch := 0; ; epoch++ {
		active := covers[epoch%len(covers)]
		activeSet := map[int]bool{}
		for _, id := range active {
			activeSet[id] = true
		}
		// A dead node in the scheduled cover ends the (simple) rotation.
		for _, id := range active {
			if acct.Depleted(id) {
				return epoch
			}
		}
		for id := range all {
			if activeSet[id] {
				acct.spent[id] += epochCostActive
			} else {
				acct.spent[id] += epochCostSleep
			}
		}
	}
}

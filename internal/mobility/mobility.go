// Package mobility simulates the actuation side of DECOR: the paper
// assumes "new sensors can be deployed to the proposed locations by a
// human or a mobile robot" (§1). Here a robot actor drives the planned
// route on the discrete-event engine, placing one sensor per stop, so
// restoration has a *latency*, not just a node count: coverage returns
// gradually as the robot works through the tour.
package mobility

import (
	"decor/internal/coverage"
	"decor/internal/geom"
	"decor/internal/sim"
	"decor/internal/tour"
)

// Milestone records the field's coverage right after one placement.
type Milestone struct {
	Time      sim.Time
	SensorID  int
	Pos       geom.Point
	CoverageK float64 // fraction of points at the map's requirement k
}

// Robot is a sim actor that travels a fixed route and actuates one
// sensor per stop.
type Robot struct {
	m     *coverage.Map
	route tour.Tour
	speed float64
	// PlaceTime is the fixed actuation time per stop (unpacking,
	// mounting); zero is allowed.
	PlaceTime sim.Time

	nextStop   int
	nextID     int
	Milestones []Milestone
	// CompletedAt is the virtual time the last sensor went live.
	CompletedAt sim.Time
}

const timerArrive = "arrive"

// NewRobot plans nothing itself: callers supply the route (typically
// tour.Plan over a method's proposed placements). speed must be
// positive.
func NewRobot(m *coverage.Map, route tour.Tour, speed float64) *Robot {
	if speed <= 0 {
		panic("mobility: speed must be positive")
	}
	next := 0
	for _, id := range m.SensorIDs() {
		if id >= next {
			next = id + 1
		}
	}
	return &Robot{m: m, route: route, speed: speed, nextID: next}
}

// OnStart implements sim.Actor: depart toward the first stop.
func (r *Robot) OnStart(ctx *sim.Context) {
	r.scheduleLeg(ctx, r.route.Start)
}

// OnMessage implements sim.Actor (robots take no messages).
func (r *Robot) OnMessage(*sim.Context, sim.Message) {}

// OnTimer implements sim.Actor: arrive, actuate, depart.
func (r *Robot) OnTimer(ctx *sim.Context, tag string) {
	if tag != timerArrive || r.nextStop >= len(r.route.Stops) {
		return
	}
	pos := r.route.Stops[r.nextStop]
	id := r.nextID
	r.nextID++
	r.m.AddSensor(id, pos)
	r.Milestones = append(r.Milestones, Milestone{
		Time: ctx.Now(), SensorID: id, Pos: pos,
		CoverageK: r.m.CoverageFrac(r.m.K()),
	})
	r.CompletedAt = ctx.Now()
	r.nextStop++
	if r.nextStop < len(r.route.Stops) {
		r.scheduleLeg(ctx, pos)
	}
}

func (r *Robot) scheduleLeg(ctx *sim.Context, from geom.Point) {
	if r.nextStop >= len(r.route.Stops) {
		return
	}
	d := from.Dist(r.route.Stops[r.nextStop])
	ctx.SetTimer(sim.Time(d/r.speed)+r.PlaceTime, timerArrive)
}

// Result summarizes a robot-actuated restoration.
type Result struct {
	Placed      int
	TourLength  float64
	CompletedAt sim.Time
	Milestones  []Milestone
}

// Execute plans the route over the given placement positions (from
// start, nearest-neighbor + 2-opt), runs the robot to completion on a
// fresh engine, and returns the milestones. Sensors are added to m as
// the robot reaches them.
func Execute(m *coverage.Map, placements []geom.Point, start geom.Point, speed float64, placeTime sim.Time) Result {
	route := tour.Plan(start, placements, 0)
	eng := sim.NewEngine(0)
	robot := NewRobot(m, route, speed)
	robot.PlaceTime = placeTime
	eng.Register(1, robot)
	eng.Run(sim.Inf)
	return Result{
		Placed:      len(robot.Milestones),
		TourLength:  route.Length(),
		CompletedAt: robot.CompletedAt,
		Milestones:  robot.Milestones,
	}
}

// TimeToCoverage returns the first milestone time at which coverage
// reached the given fraction, or ok=false if it never did.
func (res Result) TimeToCoverage(frac float64) (sim.Time, bool) {
	for _, ms := range res.Milestones {
		if ms.CoverageK >= frac {
			return ms.Time, true
		}
	}
	return 0, false
}

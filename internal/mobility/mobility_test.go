package mobility

import (
	"testing"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/failure"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/rng"
	"decor/internal/sim"
	"decor/internal/tour"
)

func damagedField(t *testing.T) (*coverage.Map, []geom.Point) {
	t.Helper()
	field := geom.Square(50)
	pts := lowdisc.Halton{}.Points(500, field)
	m := coverage.New(field, pts, 2, 2)
	(core.Centralized{}).Deploy(m, rng.New(1), core.Options{})
	disk := geom.DiskAt(25, 25, 12)
	failure.Apply(m, (failure.Area{Disk: disk}).Select(m, nil))
	// Plan the repair on a clone; actuate on the real map.
	plan := m.Clone()
	res := (core.VoronoiDECOR{Rc: 8}).Deploy(plan, rng.New(2), core.Options{})
	sites := make([]geom.Point, len(res.Placed))
	for i, pl := range res.Placed {
		sites[i] = pl.Pos
	}
	return m, sites
}

func TestExecuteRestoresCoverageOverTime(t *testing.T) {
	m, sites := damagedField(t)
	before := m.CoverageFrac(2)
	res := Execute(m, sites, geom.Pt(0, 0), 2.0, 0)
	if res.Placed != len(sites) {
		t.Fatalf("placed %d, want %d", res.Placed, len(sites))
	}
	if !m.FullyCovered() {
		t.Fatal("robot did not restore coverage")
	}
	if res.TourLength <= 0 || res.CompletedAt <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// Milestones are time-ordered and coverage-monotone.
	last := Milestone{CoverageK: before}
	for i, ms := range res.Milestones {
		if ms.Time < last.Time {
			t.Fatalf("milestone %d out of order", i)
		}
		if ms.CoverageK < last.CoverageK-1e-12 {
			t.Fatalf("coverage decreased at milestone %d", i)
		}
		last = ms
	}
	if last.CoverageK != 1 {
		t.Fatalf("final milestone coverage = %v", last.CoverageK)
	}
	// Completion time ≈ tour length / speed (zero place time).
	want := sim.Time(res.TourLength / 2.0)
	if diff := res.CompletedAt - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("completion %v, want %v", res.CompletedAt, want)
	}
}

func TestTimeToCoverage(t *testing.T) {
	m, sites := damagedField(t)
	res := Execute(m, sites, geom.Pt(0, 0), 2.0, 0)
	t90, ok := res.TimeToCoverage(0.9)
	if !ok {
		t.Fatal("90% never reached")
	}
	tFull, ok := res.TimeToCoverage(1.0)
	if !ok {
		t.Fatal("full coverage never reached")
	}
	if t90 > tFull {
		t.Errorf("t90 %v after tFull %v", t90, tFull)
	}
	if _, ok := res.TimeToCoverage(1.1); ok {
		t.Error("impossible fraction reported reachable")
	}
}

func TestPlaceTimeDelaysCompletion(t *testing.T) {
	m1, sites := damagedField(t)
	fast := Execute(m1, sites, geom.Pt(0, 0), 2.0, 0)
	m2, _ := damagedField(t)
	slow := Execute(m2, sites, geom.Pt(0, 0), 2.0, 5)
	wantExtra := sim.Time(5 * len(sites))
	if diff := (slow.CompletedAt - fast.CompletedAt) - wantExtra; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("place time accounting off by %v", diff)
	}
}

func TestFasterRobotFinishesSooner(t *testing.T) {
	m1, sites := damagedField(t)
	slow := Execute(m1, sites, geom.Pt(0, 0), 1.0, 0)
	m2, _ := damagedField(t)
	fast := Execute(m2, sites, geom.Pt(0, 0), 4.0, 0)
	if fast.CompletedAt*4 != slow.CompletedAt*1 {
		// Same route, speed scales time exactly.
		if diffRel := float64(fast.CompletedAt*4-slow.CompletedAt) / float64(slow.CompletedAt); diffRel > 1e-9 || diffRel < -1e-9 {
			t.Errorf("speed scaling wrong: %v vs %v", fast.CompletedAt, slow.CompletedAt)
		}
	}
}

func TestNewRobotValidation(t *testing.T) {
	m := coverage.New(geom.Square(10), nil, 4, 1)
	defer func() {
		if recover() == nil {
			t.Error("zero speed should panic")
		}
	}()
	NewRobot(m, tour.Tour{}, 0)
}

func TestEmptyRouteNoops(t *testing.T) {
	m := coverage.New(geom.Square(10), nil, 4, 1)
	res := Execute(m, nil, geom.Pt(0, 0), 1, 0)
	if res.Placed != 0 || res.CompletedAt != 0 {
		t.Errorf("empty route result: %+v", res)
	}
}

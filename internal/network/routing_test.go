package network

import (
	"testing"

	"decor/internal/geom"
)

func TestHopDistanceChain(t *testing.T) {
	net := lineNetwork(5, 3, 3.5) // 0-1-2-3-4
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 4}, {2, 4, 2}, {4, 0, 4},
	}
	for _, c := range cases {
		if got := net.HopDistance(c.a, c.b); got != c.want {
			t.Errorf("HopDistance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopDistanceUnreachable(t *testing.T) {
	net := lineNetwork(4, 3, 3.5)
	net.Fail(1) // isolate node 0
	if got := net.HopDistance(0, 3); got != -1 {
		t.Errorf("unreachable = %d, want -1", got)
	}
	if got := net.HopDistance(0, 99); got != -1 {
		t.Errorf("unknown target = %d, want -1", got)
	}
	if got := net.HopDistance(1, 1); got != -1 {
		t.Errorf("dead self = %d, want -1", got)
	}
}

func TestAverageHopDistance(t *testing.T) {
	net := lineNetwork(5, 3, 3.5)
	mean, reach := net.AverageHopDistance([][2]int{{0, 1}, {0, 4}, {1, 3}})
	if reach != 3 {
		t.Fatalf("reachable = %d", reach)
	}
	if want := (1.0 + 4 + 2) / 3; mean != want {
		t.Errorf("mean = %v, want %v", mean, want)
	}
	net.Fail(2)
	_, reach = net.AverageHopDistance([][2]int{{0, 4}})
	if reach != 0 {
		t.Errorf("broken chain should have no reachable pairs, got %d", reach)
	}
}

func TestDiameter(t *testing.T) {
	net := lineNetwork(6, 3, 3.5)
	if got := net.Diameter(); got != 5 {
		t.Errorf("chain diameter = %d, want 5", got)
	}
	// Fully connected cluster: diameter 1.
	dense := New(geom.Square(10))
	for i := 0; i < 4; i++ {
		dense.Add(i, geom.Pt(float64(i), 0), 1, 20)
	}
	if got := dense.Diameter(); got != 1 {
		t.Errorf("clique diameter = %d, want 1", got)
	}
	if got := New(geom.Square(10)).Diameter(); got != 0 {
		t.Errorf("empty diameter = %d", got)
	}
}

// The paper's claim behind rc = 10*sqrt(2): adjacent 5x5-cell leaders at
// that radius are always direct neighbors, while rc = 8 can require
// relaying.
func TestLeaderHopClaim(t *testing.T) {
	// Two leaders at opposite corners of adjacent diagonal cells:
	// distance 10*sqrt(2) ≈ 14.14.
	a := geom.Pt(0.0, 0.0)
	b := geom.Pt(10, 10)

	big := New(geom.Square(100))
	big.Add(1, a, 4, 14.142135623730951)
	big.Add(2, b, 4, 14.142135623730951)
	if got := big.HopDistance(1, 2); got != 1 {
		t.Errorf("big rc: hops = %d, want 1 (no routing needed)", got)
	}

	small := New(geom.Square(100))
	small.Add(1, a, 4, 8)
	small.Add(2, b, 4, 8)
	small.Add(3, geom.Pt(5, 5), 4, 8) // relay
	if got := small.HopDistance(1, 2); got != 2 {
		t.Errorf("small rc: hops = %d, want 2 (relayed)", got)
	}
}

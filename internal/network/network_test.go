package network

import (
	"testing"

	"decor/internal/geom"
	"decor/internal/rng"
)

func lineNetwork(n int, spacing, rc float64) *Network {
	net := New(geom.Square(100))
	for i := 0; i < n; i++ {
		net.Add(i, geom.Pt(float64(i)*spacing, 0), rc/2, rc)
	}
	return net
}

func TestAddFailReviveRemove(t *testing.T) {
	net := New(geom.Square(10))
	net.Add(1, geom.Pt(1, 1), 1, 2)
	if net.Len() != 1 || net.Node(1) == nil {
		t.Fatal("Add failed")
	}
	if !net.Fail(1) || net.Fail(1) {
		t.Error("Fail semantics wrong")
	}
	if len(net.AliveIDs()) != 0 {
		t.Error("failed node reported alive")
	}
	if !net.Revive(1) || net.Revive(1) {
		t.Error("Revive semantics wrong")
	}
	if !net.Remove(1) || net.Remove(1) {
		t.Error("Remove semantics wrong")
	}
}

func TestAddPanics(t *testing.T) {
	net := New(geom.Square(10))
	net.Add(1, geom.Pt(1, 1), 1, 2)
	for _, bad := range []func(){
		func() { net.Add(1, geom.Pt(2, 2), 1, 2) },
		func() { net.Add(2, geom.Pt(2, 2), 0, 2) },
		func() { net.Add(3, geom.Pt(2, 2), 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestNeighbors(t *testing.T) {
	net := lineNetwork(4, 3, 3.5) // chain: 0-1-2-3
	if got := net.NeighborsOf(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("NeighborsOf(1) = %v", got)
	}
	net.Fail(2)
	if got := net.NeighborsOf(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("after failure NeighborsOf(1) = %v", got)
	}
	if net.NeighborsOf(2) != nil {
		t.Error("dead node should have no neighbors")
	}
	if net.NeighborsOf(42) != nil {
		t.Error("unknown node should have no neighbors")
	}
}

func TestHeterogeneousLink(t *testing.T) {
	net := New(geom.Square(100))
	net.Add(1, geom.Pt(0, 0), 1, 10)
	net.Add(2, geom.Pt(5, 0), 1, 3) // b's radius too small to reach
	if got := net.NeighborsOf(1); len(got) != 0 {
		t.Errorf("asymmetric reach should not link: %v", got)
	}
	net.Add(3, geom.Pt(2, 0), 1, 3)
	if got := net.NeighborsOf(1); len(got) != 1 || got[0] != 3 {
		t.Errorf("NeighborsOf(1) = %v", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	net := lineNetwork(4, 3, 3.5)
	if !net.IsConnected() {
		t.Error("chain should be connected")
	}
	comps := net.ConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != 4 {
		t.Errorf("components = %v", comps)
	}
	net.Fail(1) // break the chain: {0}, {2,3}
	comps = net.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components after failure = %v", comps)
	}
	if comps[0][0] != 0 || len(comps[1]) != 2 {
		t.Errorf("components = %v", comps)
	}
	if net.IsConnected() {
		t.Error("broken chain reported connected")
	}
}

func TestEmptyNetwork(t *testing.T) {
	net := New(geom.Square(10))
	if !net.IsConnected() {
		t.Error("empty network should be vacuously connected")
	}
	if net.VertexConnectivity() != 0 {
		t.Error("empty connectivity should be 0")
	}
	min, max, mean := net.DegreeStats()
	if min != 0 || max != 0 || mean != 0 {
		t.Error("empty degree stats should be zero")
	}
}

func TestVertexConnectivityChain(t *testing.T) {
	net := lineNetwork(5, 3, 3.5)
	if got := net.VertexConnectivity(); got != 1 {
		t.Errorf("chain connectivity = %d, want 1", got)
	}
	if !net.KConnected(1) || net.KConnected(2) {
		t.Error("KConnected wrong for chain")
	}
	if !net.KConnected(0) {
		t.Error("0-connected must always hold")
	}
}

func TestVertexConnectivityComplete(t *testing.T) {
	net := New(geom.Square(10))
	// 4 nodes all within range: complete graph, connectivity 3.
	pts := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 1, Y: 2}, {X: 2, Y: 2}}
	for i, p := range pts {
		net.Add(i, p, 1, 5)
	}
	if got := net.VertexConnectivity(); got != 3 {
		t.Errorf("K4 connectivity = %d, want 3", got)
	}
}

func TestVertexConnectivityCycle(t *testing.T) {
	// 6 nodes in a ring, each reaching only its two ring neighbors:
	// connectivity 2.
	net := New(geom.Square(100))
	ring := []geom.Point{
		{X: 50, Y: 60}, {X: 58.66, Y: 55}, {X: 58.66, Y: 45},
		{X: 50, Y: 40}, {X: 41.34, Y: 45}, {X: 41.34, Y: 55},
	}
	for i, p := range ring {
		net.Add(i, p, 1, 10.5) // ring edge length 10; diagonal >= 17
	}
	if got := net.VertexConnectivity(); got != 2 {
		t.Errorf("cycle connectivity = %d, want 2", got)
	}
}

func TestVertexConnectivityDisconnected(t *testing.T) {
	net := New(geom.Square(100))
	net.Add(1, geom.Pt(0, 0), 1, 2)
	net.Add(2, geom.Pt(50, 50), 1, 2)
	if got := net.VertexConnectivity(); got != 0 {
		t.Errorf("disconnected graph connectivity = %d", got)
	}
}

func TestVertexConnectivityStar(t *testing.T) {
	// Hub with 4 spokes out of each other's reach: connectivity 1 (the
	// hub is a cut vertex).
	net := New(geom.Square(100))
	net.Add(0, geom.Pt(50, 50), 1, 12)
	spokes := []geom.Point{{X: 60, Y: 50}, {X: 40, Y: 50}, {X: 50, Y: 60}, {X: 50, Y: 40}}
	for i, p := range spokes {
		net.Add(i+1, p, 1, 12)
	}
	if got := net.VertexConnectivity(); got != 1 {
		t.Errorf("star connectivity = %d, want 1", got)
	}
}

func TestDegreeStats(t *testing.T) {
	net := lineNetwork(4, 3, 3.5)
	min, max, mean := net.DegreeStats()
	if min != 1 || max != 2 || mean != 1.5 {
		t.Errorf("degree stats = %d %d %v", min, max, mean)
	}
}

// The paper's corollary: if an area is k-covered and rc >= 2*rs, the
// network is k-connected. Build random k-covered-ish dense deployments
// and verify connectivity >= k.
func TestKCoverageImpliesKConnectivity(t *testing.T) {
	r := rng.New(77)
	field := geom.Square(24)
	const rs, rc = 4.0, 8.0
	for _, k := range []int{1, 2, 3} {
		net := New(field)
		// Drop sensors on a dense jittered lattice until each lattice
		// point is k-covered; lattice pitch rs/2 guarantees area coverage.
		id := 0
		for pass := 0; pass < k; pass++ {
			for x := 0.0; x <= 24; x += rs {
				for y := 0.0; y <= 24; y += rs {
					jx := x + r.Range(-0.5, 0.5)
					jy := y + r.Range(-0.5, 0.5)
					net.Add(id, field.Clamp(geom.Pt(jx, jy)), rs, rc)
					id++
				}
			}
		}
		if got := net.VertexConnectivity(); got < k {
			t.Errorf("k=%d: connectivity %d violates corollary", k, got)
		}
	}
}

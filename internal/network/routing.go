package network

// Routing support: the paper chooses the "big" communication radius
// rc = 10·√2 precisely so that adjacent grid-cell leaders are always
// 1-hop neighbors and "the grid-based approach [can] function without
// the need of any routing mechanism". With smaller radii, inter-leader
// messages must be relayed; HopDistance quantifies by how much.

// HopDistance returns the minimum number of communication hops between
// two alive nodes (0 for a==b, 1 for direct neighbors), or -1 when no
// path exists.
func (n *Network) HopDistance(a, b int) int {
	if a == b {
		na := n.nodes[a]
		if na == nil || !na.Alive {
			return -1
		}
		return 0
	}
	ids, adj := n.adjacency()
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	src, okA := idx[a]
	dst, okB := idx[b]
	if !okA || !okB {
		return -1
	}
	dist := make([]int, len(ids))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == dst {
			return dist[v]
		}
		for _, w := range adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return -1
}

// AverageHopDistance returns the mean hop distance over the given node
// pairs, ignoring unreachable pairs; reachable reports how many pairs
// had a path. The adjacency is built once and one BFS runs per distinct
// source, so large pair batches stay cheap.
func (n *Network) AverageHopDistance(pairs [][2]int) (mean float64, reachable int) {
	ids, adj := n.adjacency()
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	distFrom := map[int][]int{} // source compact index -> BFS distances
	bfs := func(src int) []int {
		if d, ok := distFrom[src]; ok {
			return d
		}
		dist := make([]int, len(ids))
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		distFrom[src] = dist
		return dist
	}
	total := 0
	for _, pr := range pairs {
		src, okA := idx[pr[0]]
		dst, okB := idx[pr[1]]
		if !okA || !okB {
			continue
		}
		if d := bfs(src)[dst]; d >= 0 {
			total += d
			reachable++
		}
	}
	if reachable == 0 {
		return 0, 0
	}
	return float64(total) / float64(reachable), reachable
}

// Diameter returns the maximum finite hop distance between any two alive
// nodes (0 for fewer than 2 alive nodes). It runs one BFS per node.
func (n *Network) Diameter() int {
	ids, adj := n.adjacency()
	best := 0
	for src := range ids {
		dist := make([]int, len(ids))
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					if dist[w] > best {
						best = dist[w]
					}
					queue = append(queue, w)
				}
			}
		}
	}
	return best
}

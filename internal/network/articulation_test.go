package network

import (
	"testing"

	"decor/internal/geom"
	"decor/internal/rng"
)

func TestArticulationChain(t *testing.T) {
	net := lineNetwork(5, 3, 3.5) // 0-1-2-3-4: interior nodes are cuts
	got := net.ArticulationPoints()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("articulation = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("articulation = %v, want %v", got, want)
		}
	}
}

func TestArticulationStarAndCycle(t *testing.T) {
	// Star: the hub is the only cut vertex.
	star := New(geom.Square(100))
	star.Add(0, geom.Pt(50, 50), 1, 12)
	for i, p := range []geom.Point{{X: 60, Y: 50}, {X: 40, Y: 50}, {X: 50, Y: 60}, {X: 50, Y: 40}} {
		star.Add(i+1, p, 1, 12)
	}
	if got := star.ArticulationPoints(); len(got) != 1 || got[0] != 0 {
		t.Errorf("star articulation = %v, want [0]", got)
	}
	// Cycle: no cut vertices.
	ring := New(geom.Square(100))
	pts := []geom.Point{
		{X: 50, Y: 60}, {X: 58.66, Y: 55}, {X: 58.66, Y: 45},
		{X: 50, Y: 40}, {X: 41.34, Y: 45}, {X: 41.34, Y: 55},
	}
	for i, p := range pts {
		ring.Add(i, p, 1, 10.5)
	}
	if got := ring.ArticulationPoints(); len(got) != 0 {
		t.Errorf("cycle articulation = %v, want none", got)
	}
}

func TestArticulationEmptyAndPair(t *testing.T) {
	if got := New(geom.Square(10)).ArticulationPoints(); len(got) != 0 {
		t.Errorf("empty = %v", got)
	}
	pair := New(geom.Square(10))
	pair.Add(1, geom.Pt(1, 1), 1, 5)
	pair.Add(2, geom.Pt(2, 1), 1, 5)
	if got := pair.ArticulationPoints(); len(got) != 0 {
		t.Errorf("edge = %v, want none", got)
	}
}

// Cross-validate against the definition: removing an articulation point
// increases the component count; removing a non-articulation point does
// not.
func TestArticulationMatchesDefinition(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 15; trial++ {
		net := New(geom.Square(60))
		n := 10 + r.Intn(40)
		for id := 0; id < n; id++ {
			net.Add(id, r.PointInRect(geom.Square(60)), 4, 12)
		}
		cuts := map[int]bool{}
		for _, id := range net.ArticulationPoints() {
			cuts[id] = true
		}
		base := len(net.ConnectedComponents())
		for _, id := range net.AliveIDs() {
			net.Fail(id)
			after := len(net.ConnectedComponents())
			net.Revive(id)
			// Removing any node drops the node itself; a cut vertex
			// leaves MORE components than base (its neighbors split),
			// a non-cut leaves base or base-1 (if it was a singleton).
			increased := after > base
			if increased != cuts[id] {
				t.Fatalf("trial %d node %d: definition says cut=%v, Tarjan says %v (base %d, after %d)",
					trial, id, increased, cuts[id], base, after)
			}
		}
	}
}

// Package network models the communication side of a sensor deployment:
// nodes with sensing radius rs and communication radius rc, the 1-hop
// neighbor graph, connected components, and vertex connectivity. It is
// used to validate the paper's §2 corollary that full k-coverage with
// rc >= 2·rs implies a k-connected network (the network stays connected
// after any k−1 node failures).
package network

import (
	"sort"

	"decor/internal/geom"
)

// Node is one sensor device.
type Node struct {
	ID    int
	Pos   geom.Point
	Rs    float64 // sensing radius
	Rc    float64 // communication radius
	Alive bool
}

// Network is a collection of sensor nodes. Links are symmetric: two alive
// nodes are 1-hop neighbors when their distance is at most the smaller of
// the two communication radii (in the paper's homogeneous setting both
// radii are equal, but heterogeneous deployments are supported per §2).
type Network struct {
	field geom.Rect
	nodes map[int]*Node
}

// New creates an empty network over the given field.
func New(field geom.Rect) *Network {
	return &Network{field: field, nodes: make(map[int]*Node)}
}

// Field returns the monitored area.
func (n *Network) Field() geom.Rect { return n.field }

// Add inserts a new alive node. It panics on duplicate ID.
func (n *Network) Add(id int, pos geom.Point, rs, rc float64) {
	if _, ok := n.nodes[id]; ok {
		panic("network: duplicate node id")
	}
	if rs <= 0 || rc <= 0 {
		panic("network: radii must be positive")
	}
	n.nodes[id] = &Node{ID: id, Pos: pos, Rs: rs, Rc: rc, Alive: true}
}

// Node returns the node with the given ID, or nil.
func (n *Network) Node(id int) *Node { return n.nodes[id] }

// Fail marks a node dead (it remains in the topology for bookkeeping).
// It reports whether the node existed and was alive.
func (n *Network) Fail(id int) bool {
	nd, ok := n.nodes[id]
	if !ok || !nd.Alive {
		return false
	}
	nd.Alive = false
	return true
}

// Revive marks a failed node alive again (e.g. after repair).
func (n *Network) Revive(id int) bool {
	nd, ok := n.nodes[id]
	if !ok || nd.Alive {
		return false
	}
	nd.Alive = true
	return true
}

// Remove deletes a node entirely.
func (n *Network) Remove(id int) bool {
	if _, ok := n.nodes[id]; !ok {
		return false
	}
	delete(n.nodes, id)
	return true
}

// Len returns the total number of nodes (alive or dead).
func (n *Network) Len() int { return len(n.nodes) }

// AliveIDs returns the IDs of alive nodes, ascending.
func (n *Network) AliveIDs() []int {
	out := make([]int, 0, len(n.nodes))
	for id, nd := range n.nodes {
		if nd.Alive {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// linked reports whether two alive nodes can communicate directly.
func linked(a, b *Node) bool {
	rc := a.Rc
	if b.Rc < rc {
		rc = b.Rc
	}
	return a.Pos.Dist2(b.Pos) <= rc*rc
}

// NeighborsOf returns the alive 1-hop neighbors of id, ascending. A dead
// or unknown node has no neighbors.
func (n *Network) NeighborsOf(id int) []int {
	return n.NeighborsInto(id, nil)
}

// NeighborsInto is NeighborsOf reusing buf's capacity: protocol rounds
// pass last round's slice back in and stop allocating once it has grown
// to the node's degree.
func (n *Network) NeighborsInto(id int, buf []int) []int {
	nd, ok := n.nodes[id]
	if !ok || !nd.Alive {
		return nil
	}
	out := buf[:0]
	for oid, other := range n.nodes {
		if oid == id || !other.Alive {
			continue
		}
		if linked(nd, other) {
			out = append(out, oid)
		}
	}
	sort.Ints(out)
	return out
}

// adjacency builds the alive-node adjacency as compact indices.
// Returns the sorted alive IDs and neighbor lists in the same indexing.
func (n *Network) adjacency() ([]int, [][]int) {
	ids := n.AliveIDs()
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	adj := make([][]int, len(ids))
	for i, id := range ids {
		a := n.nodes[id]
		for j := i + 1; j < len(ids); j++ {
			b := n.nodes[ids[j]]
			if linked(a, b) {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return ids, adj
}

// ConnectedComponents returns the alive nodes grouped into communication
// components; each component and the component list are sorted by lowest
// ID.
func (n *Network) ConnectedComponents() [][]int {
	ids, adj := n.adjacency()
	seen := make([]bool, len(ids))
	var comps [][]int
	for start := range ids {
		if seen[start] {
			continue
		}
		var comp []int
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, ids[v])
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// IsConnected reports whether all alive nodes form one component (an empty
// or single-node network is connected).
func (n *Network) IsConnected() bool {
	return len(n.ConnectedComponents()) <= 1
}

// DegreeStats returns the minimum, maximum and mean alive-neighbor degree.
func (n *Network) DegreeStats() (min, max int, mean float64) {
	_, adj := n.adjacency()
	if len(adj) == 0 {
		return 0, 0, 0
	}
	min = len(adj[0])
	total := 0
	for _, a := range adj {
		d := len(a)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		total += d
	}
	return min, max, float64(total) / float64(len(adj))
}

// VertexConnectivity returns the vertex connectivity of the alive-node
// graph: the minimum number of node removals that disconnect it. By
// convention a graph with fewer than 2 nodes has connectivity 0, and the
// complete graph on n nodes has connectivity n−1.
//
// Implementation: Even's algorithm — unit-capacity max-flow on the
// node-split digraph between a fixed source and each non-neighbor, plus
// flows between the source's neighbors' non-neighbors, bounded by the
// current best. Intended for the modest network sizes of the experiments.
func (n *Network) VertexConnectivity() int {
	ids, adj := n.adjacency()
	v := len(ids)
	if v < 2 {
		return 0
	}
	if !n.IsConnected() {
		return 0
	}
	// Track adjacency as sets for quick lookup.
	isAdj := make([]map[int]bool, v)
	for i, a := range adj {
		isAdj[i] = make(map[int]bool, len(a))
		for _, j := range a {
			isAdj[i][j] = true
		}
	}
	complete := true
	for i := 0; i < v && complete; i++ {
		if len(adj[i]) != v-1 {
			complete = false
		}
	}
	if complete {
		return v - 1
	}
	// Connectivity never exceeds the minimum degree; start from there.
	best := v - 1
	for i := range adj {
		if len(adj[i]) < best {
			best = len(adj[i])
		}
	}
	// Min vertex cut separates some non-adjacent pair; it suffices to try
	// s = 0..best against all non-neighbors (standard bound: the cut
	// excludes at least one of the first best+1 vertices).
	for s := 0; s <= best && s < v; s++ {
		for t := 0; t < v; t++ {
			if t == s || isAdj[s][t] {
				continue
			}
			if f := maxFlowSplit(adj, s, t, best); f < best {
				best = f
			}
		}
	}
	return best
}

// KConnected reports whether the alive graph is at least k-vertex-
// connected.
func (n *Network) KConnected(k int) bool {
	if k <= 0 {
		return true
	}
	return n.VertexConnectivity() >= k
}

// maxFlowSplit computes max flow from s to t in the node-split digraph of
// the undirected graph adj (every vertex except s and t has capacity 1;
// edges have unit capacity which suffices for vertex cuts). The search
// aborts early once the flow reaches cap, returning cap.
func maxFlowSplit(adj [][]int, s, t, cap int) int {
	v := len(adj)
	// Vertex x -> nodes 2x (in) and 2x+1 (out); arc in->out capacity 1
	// (infinite for s, t). Undirected edge (x, y) becomes xOut->yIn and
	// yOut->xIn with capacity 1.
	g := newFlowGraph(2 * v)
	const inf = 1 << 30
	for x := 0; x < v; x++ {
		c := 1
		if x == s || x == t {
			c = inf
		}
		g.addEdge(2*x, 2*x+1, c)
	}
	for x := 0; x < v; x++ {
		for _, y := range adj[x] {
			if x < y {
				g.addEdge(2*x+1, 2*y, 1)
				g.addEdge(2*y+1, 2*x, 1)
			}
		}
	}
	return g.maxflow(2*s+1, 2*t, cap)
}

// flowGraph is a small Dinic max-flow implementation over unit-ish
// capacities.
type flowGraph struct {
	n     int
	to    []int
	capa  []int
	next  []int
	head  []int
	level []int
	iter  []int
}

func newFlowGraph(n int) *flowGraph {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &flowGraph{n: n, head: h}
}

func (g *flowGraph) addEdge(u, v, c int) {
	g.to = append(g.to, v)
	g.capa = append(g.capa, c)
	g.next = append(g.next, g.head[u])
	g.head[u] = len(g.to) - 1
	// Reverse edge.
	g.to = append(g.to, u)
	g.capa = append(g.capa, 0)
	g.next = append(g.next, g.head[v])
	g.head[v] = len(g.to) - 1
}

func (g *flowGraph) bfs(s, t int) bool {
	g.level = make([]int, g.n)
	for i := range g.level {
		g.level[i] = -1
	}
	queue := []int{s}
	g.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := g.head[u]; e != -1; e = g.next[e] {
			if g.capa[e] > 0 && g.level[g.to[e]] < 0 {
				g.level[g.to[e]] = g.level[u] + 1
				queue = append(queue, g.to[e])
			}
		}
	}
	return g.level[t] >= 0
}

func (g *flowGraph) dfs(u, t, f int) int {
	if u == t {
		return f
	}
	for ; g.iter[u] != -1; g.iter[u] = g.next[g.iter[u]] {
		e := g.iter[u]
		v := g.to[e]
		if g.capa[e] > 0 && g.level[v] == g.level[u]+1 {
			d := g.dfs(v, t, minInt(f, g.capa[e]))
			if d > 0 {
				g.capa[e] -= d
				g.capa[e^1] += d
				return d
			}
		}
	}
	return 0
}

// maxflow returns the s→t max flow, stopping early at limit.
func (g *flowGraph) maxflow(s, t, limit int) int {
	flow := 0
	for flow < limit && g.bfs(s, t) {
		g.iter = append([]int(nil), g.head...)
		for {
			f := g.dfs(s, t, 1<<30)
			if f == 0 {
				break
			}
			flow += f
			if flow >= limit {
				return limit
			}
		}
	}
	return flow
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package network

// ArticulationPoints returns the alive nodes whose individual failure
// would disconnect the communication graph (cut vertices, found with
// Tarjan's low-link DFS), ascending. They are the network's single
// points of failure: the paper's k-coverage redundancy argument has a
// connectivity twin — a robust deployment should have few or none.
func (n *Network) ArticulationPoints() []int {
	ids, adj := n.adjacency()
	v := len(ids)
	disc := make([]int, v)
	low := make([]int, v)
	parent := make([]int, v)
	isCut := make([]bool, v)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := 0
	// Iterative DFS to avoid recursion depth limits on chains.
	type frame struct {
		v, childIdx, children int
	}
	for start := 0; start < v; start++ {
		if disc[start] != -1 {
			continue
		}
		stack := []frame{{v: start}}
		disc[start] = timer
		low[start] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.childIdx < len(adj[f.v]) {
				w := adj[f.v][f.childIdx]
				f.childIdx++
				if disc[w] == -1 {
					parent[w] = f.v
					f.children++
					disc[w] = timer
					low[w] = timer
					timer++
					stack = append(stack, frame{v: w})
				} else if w != parent[f.v] {
					if disc[w] < low[f.v] {
						low[f.v] = disc[w]
					}
				}
				continue
			}
			// Post-order: fold into the parent.
			stack = stack[:len(stack)-1]
			if p := parent[f.v]; p != -1 {
				if low[f.v] < low[p] {
					low[p] = low[f.v]
				}
				if parent[p] != -1 && low[f.v] >= disc[p] {
					isCut[p] = true
				}
			}
			if parent[f.v] == -1 && f.children > 1 {
				isCut[f.v] = true
			}
		}
	}
	var out []int
	for i, c := range isCut {
		if c {
			out = append(out, ids[i])
		}
	}
	return out
}

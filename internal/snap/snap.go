// Package snap is the versioned binary snapshot codec shared by every
// Snapshot()/Restore() pair in the tree (engine, protocol worlds, the
// decor facade, chaos checkpoints, session fast-restore). The format is
// deliberately dumb — varint integers, IEEE-754 float bits, length-
// prefixed byte strings — because determinism is the whole point: the
// same state always encodes to the same bytes, and decoding never
// allocates proportionally to attacker-controlled lengths.
//
// A sealed snapshot is
//
//	magic "DSNP" | version byte | body | SHA-256(magic|version|body)
//
// and Open rejects anything else with a typed error (ErrMagic,
// ErrVersion, ErrTruncated, ErrCorrupt) — never a panic, never a silent
// partial restore. Decoders drain a Reader and then call Close, which
// surfaces any mid-stream truncation plus trailing garbage; the fuzz
// suite in internal/chaos drives arbitrary corruptions through this
// contract.
package snap

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math"
)

// Typed decode failures. Everything Open and Reader can report wraps one
// of these, so callers (and tests) can classify rejections.
var (
	// ErrMagic: the bytes are not a snapshot at all.
	ErrMagic = errors.New("snap: bad magic, not a snapshot")
	// ErrVersion: a snapshot from an unknown format version.
	ErrVersion = errors.New("snap: unsupported snapshot version")
	// ErrCorrupt: checksum mismatch — the body was altered.
	ErrCorrupt = errors.New("snap: checksum mismatch, snapshot corrupt")
	// ErrTruncated: a read ran past the end of the body.
	ErrTruncated = errors.New("snap: truncated snapshot")
	// ErrMalformed: a structurally impossible field (negative length,
	// collection longer than the remaining bytes, trailing garbage).
	ErrMalformed = errors.New("snap: malformed snapshot field")
)

const (
	magic = "DSNP"
	// Version is the current snapshot format version. Decoders accept
	// exactly this version: the format carries full state, so there is
	// nothing sensible to do with a partially understood snapshot.
	Version  = 1
	sumLen   = sha256.Size
	headLen  = len(magic) + 1
	minTotal = headLen + sumLen
)

// Writer accumulates a snapshot body. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends a signed (zig-zag) varint.
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Int appends an int as a signed varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// U64 appends a fixed-width little-endian uint64 (RNG states, seeds).
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// F64 appends the IEEE-754 bits of v — exact, including -0 and NaN
// payloads, so restored floats are bit-identical.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends one byte, 0 or 1.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Byte appends one raw byte (payload type codes).
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Str appends a length-prefixed string.
func (w *Writer) Str(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Len returns the current body length in bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Seal wraps the body in the snapshot envelope — magic, version,
// checksum — and returns the complete snapshot. The Writer may keep
// accumulating afterwards, but the returned slice is independent.
func (w *Writer) Seal() []byte {
	out := make([]byte, 0, headLen+len(w.buf)+sumLen)
	out = append(out, magic...)
	out = append(out, Version)
	out = append(out, w.buf...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// Reader decodes a snapshot body with a sticky error: after the first
// failure every accessor returns a zero value and Err/Close report the
// original cause, so decoders can run straight-line without checking
// every read.
type Reader struct {
	buf []byte
	off int
	err error
}

// Open verifies the envelope (magic, version, checksum) and returns a
// Reader positioned at the body start.
func Open(data []byte) (*Reader, error) {
	if len(data) < minTotal {
		if len(data) >= len(magic) && string(data[:len(magic)]) == magic {
			return nil, ErrTruncated
		}
		return nil, ErrMagic
	}
	if string(data[:len(magic)]) != magic {
		return nil, ErrMagic
	}
	if data[len(magic)] != Version {
		return nil, ErrVersion
	}
	body, tail := data[:len(data)-sumLen], data[len(data)-sumLen:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(tail) {
		return nil, ErrCorrupt
	}
	return &Reader{buf: body[headLen:]}, nil
}

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Remaining returns the undecoded byte count.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Close finishes a decode: it returns the sticky error, or ErrMalformed
// if undecoded bytes remain (a snapshot is a closed record, not a
// stream).
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return ErrMalformed
	}
	return nil
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// Varint decodes a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// Int decodes an int.
func (r *Reader) Int() int { return int(r.Varint()) }

// CollectionLen decodes a collection length and validates it against the
// remaining bytes (each element costs at least one byte), so a corrupted
// length can never drive a huge allocation or a long spin.
func (r *Reader) CollectionLen() int {
	n := r.Varint()
	if r.err != nil {
		return 0
	}
	if n < 0 || n > int64(r.Remaining()) {
		r.fail(ErrMalformed)
		return 0
	}
	return int(n)
}

// U64 decodes a fixed-width uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// F64 decodes IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool decodes one byte as a bool, rejecting values other than 0/1.
func (r *Reader) Bool() bool {
	b := r.Byte()
	if r.err != nil {
		return false
	}
	if b > 1 {
		r.fail(ErrMalformed)
		return false
	}
	return b == 1
}

// Byte decodes one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 1 {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bytes decodes a length-prefixed byte string (copied: the result does
// not alias the snapshot buffer).
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrTruncated)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += int(n)
	return out
}

// Str decodes a length-prefixed string.
func (r *Reader) Str() string { return string(r.Bytes()) }

package snap

import (
	"errors"
	"math"
	"testing"
)

// roundTrip writes one of every field type and seals.
func roundTrip() []byte {
	w := NewWriter()
	w.Int(-42)
	w.Int(0)
	w.Uvarint(1 << 40)
	w.U64(0xdeadbeefcafef00d)
	w.F64(3.14159)
	w.F64(math.Copysign(0, -1))
	w.Bool(true)
	w.Bool(false)
	w.Byte(7)
	w.Str("hello")
	w.Bytes([]byte{1, 2, 3})
	return w.Seal()
}

func TestRoundTrip(t *testing.T) {
	r, err := Open(roundTrip())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := r.Int(); got != -42 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Int(); got != 0 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.U64(); got != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %x", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("F64 -0 = %v", got)
	}
	if got := r.Bool(); !got {
		t.Errorf("Bool = %v", got)
	}
	if got := r.Bool(); got {
		t.Errorf("Bool = %v", got)
	}
	if got := r.Byte(); got != 7 {
		t.Errorf("Byte = %d", got)
	}
	if got := r.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := r.Bytes(); len(got) != 3 || got[0] != 1 {
		t.Errorf("Bytes = %v", got)
	}
	if err := r.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	a, b := roundTrip(), roundTrip()
	if string(a) != string(b) {
		t.Error("identical writes produced different snapshots")
	}
}

func TestOpenRejectsEnvelope(t *testing.T) {
	good := roundTrip()

	if _, err := Open(nil); !errors.Is(err, ErrMagic) {
		t.Errorf("nil: %v", err)
	}
	if _, err := Open([]byte("not a snapshot at all, but long enough to pass size checks......")); !errors.Is(err, ErrMagic) {
		t.Errorf("garbage: %v", err)
	}
	if _, err := Open(good[:8]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}

	bumped := append([]byte(nil), good...)
	bumped[4] = Version + 1
	if _, err := Open(bumped); !errors.Is(err, ErrVersion) {
		t.Errorf("version bump: %v", err)
	}

	// Flip one body byte: checksum must catch it.
	flipped := append([]byte(nil), good...)
	flipped[10] ^= 0x40
	if _, err := Open(flipped); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip: %v", err)
	}

	// Truncating the tail breaks the checksum too (the sum bytes shift).
	cut := good[:len(good)-5]
	if _, err := Open(cut); err == nil {
		t.Error("tail cut accepted")
	}
}

func TestReaderStickyError(t *testing.T) {
	w := NewWriter()
	w.Int(5)
	r, err := Open(w.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Int(); got != 5 {
		t.Fatalf("Int = %d", got)
	}
	// Past the end: everything zeroes and Close reports truncation.
	if got := r.U64(); got != 0 {
		t.Errorf("U64 past end = %d", got)
	}
	if got := r.Str(); got != "" {
		t.Errorf("Str past end = %q", got)
	}
	if err := r.Close(); !errors.Is(err, ErrTruncated) {
		t.Errorf("Close: %v", err)
	}
}

func TestCollectionLenBounds(t *testing.T) {
	w := NewWriter()
	w.Int(1 << 40) // a "length" far larger than the body
	r, err := Open(w.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if n := r.CollectionLen(); n != 0 {
		t.Errorf("CollectionLen = %d", n)
	}
	if err := r.Close(); !errors.Is(err, ErrMalformed) {
		t.Errorf("Close: %v", err)
	}

	w = NewWriter()
	w.Int(-3)
	r, err = Open(w.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if n := r.CollectionLen(); n != 0 {
		t.Errorf("negative CollectionLen = %d", n)
	}
	if err := r.Close(); !errors.Is(err, ErrMalformed) {
		t.Errorf("Close: %v", err)
	}
}

func TestCloseRejectsTrailingGarbage(t *testing.T) {
	w := NewWriter()
	w.Int(1)
	w.Int(2)
	r, err := Open(w.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Int(); got != 1 {
		t.Fatalf("Int = %d", got)
	}
	if err := r.Close(); !errors.Is(err, ErrMalformed) {
		t.Errorf("Close with undecoded bytes: %v", err)
	}
}

package decor

import (
	"strings"
	"testing"
)

func quickParams(k int) Params {
	return Params{FieldSide: 50, K: k, Rs: 4, NumPoints: 500, Seed: 11}
}

func TestNewDeploymentValidation(t *testing.T) {
	bad := []Params{
		{},
		{FieldSide: 100},              // K missing
		{FieldSide: 100, K: 1},        // Rs missing
		{FieldSide: 100, K: 1, Rs: 4}, // NumPoints missing
		{FieldSide: 100, K: 1, Rs: 4, NumPoints: 10, Rc: 1}, // Rc < Rs
		{FieldSide: -1, K: 1, Rs: 4, NumPoints: 10},         // bad field
		{FieldSide: 100, K: 1, Rs: 4, NumPoints: 10, Generator: "nope"},
	}
	for i, p := range bad {
		if _, err := NewDeployment(p); err == nil {
			t.Errorf("params %d should be rejected: %+v", i, p)
		}
	}
	d, err := NewDeployment(quickParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.Params().Rc != 8 {
		t.Errorf("Rc default = %v, want 2*Rs", d.Params().Rc)
	}
	if d.Params().Generator != "halton" {
		t.Errorf("generator default = %q", d.Params().Generator)
	}
}

func TestAddScatterAndSensors(t *testing.T) {
	d, _ := NewDeployment(quickParams(1))
	id := d.AddSensor(Point{X: 10, Y: 10})
	if id != 0 {
		t.Errorf("first id = %d", id)
	}
	ids := d.ScatterRandom(9)
	if len(ids) != 9 || d.NumSensors() != 10 {
		t.Errorf("scatter failed: %v, total %d", ids, d.NumSensors())
	}
	ss := d.Sensors()
	if len(ss) != 10 || ss[0].ID != 0 || !samePoint(ss[0].Pos, Point{X: 10, Y: 10}) {
		t.Errorf("Sensors() = %+v", ss[:1])
	}
}

func samePoint(a, b Point) bool { return a.X == b.X && a.Y == b.Y }

func TestDeployAllMethods(t *testing.T) {
	for _, method := range MethodNames() {
		d, _ := NewDeployment(quickParams(2))
		d.ScatterRandom(40)
		rep, err := d.Deploy(method)
		if err != nil {
			t.Fatalf("Deploy(%s): %v", method, err)
		}
		if !d.FullyCovered() || d.Coverage(2) != 1 {
			t.Errorf("%s: not fully covered", method)
		}
		if rep.Placed == 0 || rep.TotalSensors != d.NumSensors() {
			t.Errorf("%s: report inconsistent: %+v", method, rep)
		}
	}
	d, _ := NewDeployment(quickParams(1))
	if _, err := d.Deploy("bogus"); err == nil {
		t.Error("unknown method should error")
	}
}

func TestDeployIsDeterministicAcrossInstances(t *testing.T) {
	run := func() int {
		d, _ := NewDeployment(quickParams(2))
		d.ScatterRandom(40)
		rep, _ := d.Deploy("grid-small")
		return rep.Placed
	}
	if run() != run() {
		t.Error("equal seeds should give identical deployments")
	}
}

func TestFailureAndRestoration(t *testing.T) {
	d, _ := NewDeployment(quickParams(2))
	d.ScatterRandom(40)
	if _, err := d.Deploy("centralized"); err != nil {
		t.Fatal(err)
	}
	before := d.NumSensors()
	dead := d.FailArea(Point{X: 25, Y: 25}, 12)
	if len(dead) == 0 {
		t.Fatal("area failure killed nothing")
	}
	if d.NumSensors() != before-len(dead) {
		t.Error("failed sensors not removed")
	}
	if d.FullyCovered() {
		t.Error("field should have lost coverage")
	}
	rep, err := d.Deploy("voronoi-small")
	if err != nil {
		t.Fatal(err)
	}
	if !d.FullyCovered() || rep.Placed == 0 {
		t.Error("restoration failed")
	}
}

func TestFailRandomFraction(t *testing.T) {
	d, _ := NewDeployment(quickParams(1))
	d.ScatterRandom(100)
	dead := d.FailRandom(0.3)
	if len(dead) != 30 {
		t.Errorf("failed %d, want 30", len(dead))
	}
	if d.NumSensors() != 70 {
		t.Errorf("survivors = %d", d.NumSensors())
	}
}

func TestRedundantAndCoverageLevels(t *testing.T) {
	d, _ := NewDeployment(quickParams(1))
	// Pile sensors at one spot: all but one redundant for the points they
	// cover.
	d.AddSensor(Point{X: 25, Y: 25})
	d.AddSensor(Point{X: 25, Y: 25.1})
	red := d.Redundant()
	if len(red) != 1 {
		t.Errorf("redundant = %v", red)
	}
	if c1, c2 := d.Coverage(1), d.Coverage(2); c1 <= 0 || c2 > c1 {
		t.Errorf("coverage levels inconsistent: %v %v", c1, c2)
	}
}

func TestConnectivityCorollary(t *testing.T) {
	p := quickParams(2)
	p.FieldSide = 25
	p.NumPoints = 200
	d, _ := NewDeployment(p)
	if _, err := d.Deploy("centralized"); err != nil {
		t.Fatal(err)
	}
	// Full 2-coverage with Rc = 2·Rs must give a >= 2-connected network.
	if got := d.Connectivity(); got < 2 {
		t.Errorf("connectivity = %d, want >= K = 2", got)
	}
}

func TestRendering(t *testing.T) {
	d, _ := NewDeployment(quickParams(1))
	d.ScatterRandom(10)
	if out := d.ASCII(40); !strings.Contains(out, "*") {
		t.Error("ASCII missing sensors")
	}
	if svg := d.SVG(); !strings.HasPrefix(svg, "<svg") {
		t.Error("SVG malformed")
	}
}

func TestRunFigureQuick(t *testing.T) {
	out, err := RunFigure("fig13", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig13") || !strings.Contains(out, "centralized") {
		t.Errorf("figure table malformed:\n%s", out)
	}
	if _, err := RunFigure("fig99", true); err == nil {
		t.Error("unknown figure should error")
	}
}

// Command decor-bench regenerates the paper's evaluation figures
// (Figures 7–14) as text tables or CSV.
//
// Examples:
//
//	decor-bench -fig all            # full paper parameters (takes a while)
//	decor-bench -fig fig8 -quick    # reduced field for a fast smoke run
//	decor-bench -fig fig10 -csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"decor/internal/experiment"
	"decor/internal/metrics"
	"decor/internal/obs"
	"decor/internal/report"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: fig7..fig14, an extension (ext-area, ext-cell, ext-gen, ext-corr, ext-conn, ext-energy, ext-rel), all, or \"ext\" or \"summary\"")
		quick      = flag.Bool("quick", false, "use the reduced test configuration")
		csv        = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		runs       = flag.Int("runs", 0, "override the number of averaged runs (default: paper's 5)")
		seed       = flag.Uint64("seed", 0, "override the base seed")
		gen        = flag.String("gen", "", "override the point generator (halton|hammersley|...)")
		outDir     = flag.String("out", "", "also write each figure to <out>/<fig>.txt (or .csv with -csv)")
		reportPath = flag.String("report", "", "write the complete Markdown reproduction report to this file and exit")
		deployK    = flag.Int("deployments", 0, "run each method once at this coverage requirement and report per-deployment metrics (0 = off)")
		jsonOut    = flag.String("json", "", `with -deployments, write the deployments as a JSON array to this file ("-" = stdout)`)
		parallel   = flag.Int("parallel", 0, "worker goroutines for the independent experiment cells (0 = GOMAXPROCS); output is identical for any value")
		tiled      = flag.Bool("tiled", false, "use tiled coverage storage and the tile-parallel placement engines (DESIGN.md §13); output is identical either way")
		placeW     = flag.Int("place-workers", 0, "with -tiled, worker goroutines inside each placement (0 = GOMAXPROCS); output is identical for any value")
		maxTiles   = flag.Int("max-resident-tiles", 0, "with -tiled, bound materialized count pages per coverage map (0 = unlimited)")
	)
	var ofl obs.RunFlags
	ofl.Register(flag.CommandLine)
	flag.Parse()
	if err := ofl.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := ofl.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	cfg := experiment.Default()
	if *quick {
		cfg = experiment.Quick()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *seed > 0 {
		cfg.Seed = *seed
	}
	if *gen != "" {
		cfg.Generator = *gen
	}
	if *parallel > 0 {
		cfg.Parallel = *parallel
	}
	if *tiled {
		cfg.Tiled = true
		cfg.PlaceWorkers = *placeW
		cfg.MaxResidentTiles = *maxTiles
	}

	if *deployK > 0 {
		start := time.Now()
		deps := experiment.Deployments(cfg, *deployK)
		for _, d := range deps {
			fmt.Println(d)
		}
		fmt.Printf("# elapsed: %v\n", time.Since(start).Round(time.Millisecond))
		if *jsonOut != "" {
			var w io.Writer = os.Stdout
			if *jsonOut != "-" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				defer f.Close()
				w = f
			}
			if err := metrics.WriteJSON(w, deps); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		start := time.Now()
		if err := report.Write(f, cfg, report.Full()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s (%v)\n", *reportPath, time.Since(start).Round(time.Millisecond))
		return
	}
	if *fig == "summary" {
		start := time.Now()
		fmt.Print(experiment.SummaryTable(experiment.Summary(cfg)))
		fmt.Printf("# elapsed: %v\n", time.Since(start).Round(time.Millisecond))
		return
	}
	var ids []string
	switch *fig {
	case "all":
		ids = experiment.AllIDs()
	case "ext":
		ids = experiment.ExtIDs()
	default:
		ids = strings.Split(*fig, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		f, err := experiment.ByID(id, cfg)
		if err != nil {
			f, err = experiment.ExtByID(id, cfg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var body string
		if *csv {
			body = f.CSV()
			fmt.Print(body)
		} else {
			body = f.Table()
			fmt.Print(body)
			fmt.Printf("# elapsed: %v\n", time.Since(start).Round(time.Millisecond))
		}
		if *outDir != "" {
			ext := ".txt"
			if *csv {
				ext = ".csv"
			}
			path := filepath.Join(*outDir, f.ID+ext)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Println()
	}
}

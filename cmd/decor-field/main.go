// Command decor-field renders the paper's illustration figures: the
// Halton-approximated field (Fig. 4), an example DECOR deployment
// (Fig. 5) and an uncovered disaster area (Fig. 6), as SVG or ASCII.
//
// Examples:
//
//	decor-field -what points -o fig4.svg
//	decor-field -what deploy -ascii
//	decor-field -what failure -o fig6.svg
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/experiment"
	"decor/internal/failure"
	"decor/internal/geom"
	"decor/internal/obs"
	"decor/internal/render"
	"decor/internal/rng"
	"decor/internal/tour"
	"decor/internal/voronoi"
)

func main() {
	var (
		what   = flag.String("what", "points", "points (fig4) | deploy (fig5) | failure (fig6) | voronoi | restore")
		out    = flag.String("o", "", "write output to this file (default: stdout)")
		ascii  = flag.Bool("ascii", false, "emit ASCII art instead of SVG")
		usePNG = flag.Bool("png", false, "emit PNG (with coverage heatmap) instead of SVG")
		k      = flag.Int("k", 1, "coverage requirement for deploy/failure")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	var ofl obs.RunFlags
	ofl.Register(flag.CommandLine)
	flag.Parse()
	if err := ofl.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := ofl.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	cfg := experiment.Default()
	cfg.Seed = *seed
	var m *coverage.Map
	opts := render.SVGOptions{ShowPoints: true}
	switch *what {
	case "points":
		m = coverage.New(cfg.Field(), cfg.Points(), cfg.Rs, *k)
	case "voronoi":
		m = cfg.NewMap(*k, 0)
		(core.VoronoiDECOR{Rc: 2 * cfg.Rs}).Deploy(m, rng.New(cfg.Seed+7), core.Options{})
		var sites []geom.Point
		for _, id := range m.SensorIDs() {
			p, _ := m.SensorPos(id)
			sites = append(sites, p)
		}
		opts.ShowSensors = true
		opts.VoronoiCells = voronoi.Diagram(sites, m.Field())
	case "deploy":
		m = cfg.NewMap(*k, 0)
		meth := core.VoronoiDECOR{Rc: 2 * cfg.Rs}
		meth.Deploy(m, rng.New(cfg.Seed+7), core.Options{})
		opts.ShowSensors = true
	case "failure":
		m = cfg.NewMap(*k, 0)
		(core.Centralized{}).Deploy(m, rng.New(cfg.Seed+7), core.Options{})
		disk := cfg.AreaFailureDisk()
		failure.Apply(m, (failure.Area{Disk: disk}).Select(m, nil))
		opts.ShowSensors = true
		opts.FailureDisk = disk
	case "restore":
		// The disaster, the repair, and the robot's route through it.
		m = cfg.NewMap(*k, 0)
		(core.Centralized{}).Deploy(m, rng.New(cfg.Seed+7), core.Options{})
		disk := cfg.AreaFailureDisk()
		failure.Apply(m, (failure.Area{Disk: disk}).Select(m, nil))
		res := (core.VoronoiDECOR{Rc: 2 * cfg.Rs}).Deploy(m, rng.New(cfg.Seed+8), core.Options{})
		sites := make([]geom.Point, len(res.Placed))
		for i, pl := range res.Placed {
			sites[i] = pl.Pos
		}
		route := tour.Plan(m.Field().Min, sites, 0)
		opts.ShowSensors = true
		opts.FailureDisk = disk
		opts.Tour = append([]geom.Point{route.Start}, route.Stops...)
	default:
		fmt.Fprintf(os.Stderr, "unknown -what %q\n", *what)
		os.Exit(2)
	}

	var doc []byte
	switch {
	case *ascii:
		doc = []byte(render.ASCII(m, 100))
	case *usePNG:
		var buf bytes.Buffer
		err := render.PNG(&buf, m, render.PNGOptions{
			ShowPoints: false, ShowSensors: true, Heatmap: true,
			FailureDisk: opts.FailureDisk,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		doc = buf.Bytes()
	default:
		doc = []byte(render.SVG(m, opts))
	}
	if *out == "" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d sensors, %.1f%% %d-covered)\n",
		*out, m.NumSensors(), 100*m.CoverageFrac(*k), *k)
}

// Command decor-proto runs DECOR in its fully event-driven form on the
// discrete-event protocol simulator: unsynchronized leader/node timers,
// real message latency, placement notifications, base-station seeding —
// and compares the outcome with the round-based model on the same field.
//
// Example:
//
//	decor-proto -scheme grid -k 3
//	decor-proto -scheme voronoi -k 2 -latency 0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/lowdisc"
	"decor/internal/obs"
	"decor/internal/protocol"
	"decor/internal/rng"
	"decor/internal/sim"

	"decor/internal/geom"
)

func main() {
	var (
		fieldSide = flag.Float64("field", 100, "edge length of the square field")
		k         = flag.Int("k", 3, "coverage requirement")
		rs        = flag.Float64("rs", 4, "sensing radius")
		points    = flag.Int("points", 2000, "sample points")
		initial   = flag.Int("initial", 200, "pre-deployed random sensors")
		scheme    = flag.String("scheme", "grid", "grid | voronoi")
		cell      = flag.Float64("cell", 5, "grid cell size")
		rc        = flag.Float64("rc", 8, "voronoi communication radius")
		latency   = flag.Float64("latency", 0.05, "one-hop message latency (s)")
		period    = flag.Float64("period", 1.0, "leader wake-up period (s)")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	var ofl obs.RunFlags
	ofl.Register(flag.CommandLine)
	flag.Parse()
	if err := ofl.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := ofl.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	build := func() *coverage.Map {
		field := geom.Square(*fieldSide)
		pts := lowdisc.Halton{}.Points(*points, field)
		m := coverage.New(field, pts, *rs, *k)
		r := rng.New(*seed)
		for id := 0; id < *initial; id++ {
			m.AddSensor(id, r.PointInRect(field))
		}
		return m
	}

	// Event-driven run.
	m := build()
	eng := sim.NewEngine(sim.Time(*latency))
	var placedEvent, msgsEvent, seeds int
	var virtualTime sim.Time
	switch *scheme {
	case "grid":
		w := protocol.NewWorld(m, *cell, eng, sim.Time(*period))
		seeds = protocol.RunDeployment(w)
		placedEvent, msgsEvent = len(w.PlacementLog), w.MessagesSent
	case "voronoi":
		w := protocol.NewVoronoiWorld(m, *rc, eng, sim.Time(*period))
		seeds = protocol.RunVoronoiDeployment(w)
		placedEvent, msgsEvent = len(w.PlacementLog), w.MessagesSent
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}
	virtualTime = eng.Now()
	st := eng.Stats()
	fmt.Printf("event-driven %s DECOR (latency %.3gs, period %.3gs):\n", *scheme, *latency, *period)
	fmt.Printf("  placed %d sensors, %d placement messages, %d base-station seeds\n",
		placedEvent, msgsEvent, seeds)
	fmt.Printf("  virtual completion time: %.1fs; engine: %d delivered, %d dropped, %d timers\n",
		float64(virtualTime), st.Delivered, st.Dropped, st.Timers)
	fmt.Printf("  coverage: %.1f%% of points %d-covered\n\n", 100*m.CoverageFrac(*k), *k)

	// Round-based comparison on an identical field.
	m2 := build()
	var meth core.Method
	if *scheme == "grid" {
		meth = core.GridDECOR{CellSize: *cell}
	} else {
		meth = core.VoronoiDECOR{Rc: *rc}
	}
	res := meth.Deploy(m2, rng.New(*seed+7), core.Options{})
	fmt.Printf("round-based %s for comparison:\n", res.Method)
	fmt.Printf("  placed %d sensors in %d rounds, %d messages (%.1f/cell)\n",
		res.NumPlaced(), res.Rounds, res.Messages, res.MessagesPerCell())
	fmt.Printf("\nevent/round placement ratio: %.2f (finer-grained knowledge propagation\n", float64(placedEvent)/float64(res.NumPlaced()))
	fmt.Println("generally lets the asynchronous execution place fewer sensors)")
}

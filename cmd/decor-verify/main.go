// Command decor-verify deploys a field with a chosen method and then
// checks the result three independent ways:
//
//  1. the discrepancy point set (DECOR's own notion of done),
//  2. the exact perimeter-coverage decision procedure (Huang & Tseng,
//     the paper's reference [8]),
//  3. a fine lattice scan,
//
// and reports the reliability of the resulting deployment under a given
// sensor failure probability.
//
// Example:
//
//	decor-verify -k 3 -method voronoi-big -q 0.3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"decor"
	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/lowdisc"
	"decor/internal/obs"
	"decor/internal/percover"
	"decor/internal/reliability"
	"decor/internal/rng"
	"decor/internal/trace"

	"decor/internal/geom"
)

func main() {
	var (
		fieldSide = flag.Float64("field", 100, "edge length of the square field")
		k         = flag.Int("k", 3, "coverage requirement")
		rs        = flag.Float64("rs", 4, "sensing radius")
		points    = flag.Int("points", 2000, "sample points")
		initial   = flag.Int("initial", 200, "pre-deployed random sensors")
		method    = flag.String("method", "voronoi-big", strings.Join(decor.MethodNames(), "|"))
		seed      = flag.Uint64("seed", 1, "random seed")
		q         = flag.Float64("q", 0.3, "per-sensor failure probability for the reliability report")
		lattice   = flag.Int("lattice", 300, "lattice resolution for the brute-force check")
		traceOut  = flag.String("trace", "", "write a JSONL trace of the run to this file")
	)
	var ofl obs.RunFlags
	ofl.Register(flag.CommandLine)
	flag.Parse()
	if err := ofl.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := ofl.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	field := geom.Square(*fieldSide)
	pts := lowdisc.Halton{}.Points(*points, field)
	m := coverage.New(field, pts, *rs, *k)
	r := rng.New(*seed)
	for id := 0; id < *initial; id++ {
		m.AddSensor(id, r.PointInRect(field))
	}
	meth, err := core.MethodByName(*method, *rs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res := meth.Deploy(m, rng.New(*seed+7), core.Options{})
	fmt.Printf("deployed %d sensors with %s (%d total)\n\n",
		res.NumPlaced(), *method, m.NumSensors())
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := trace.Write(f, m, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Append the run's instrumentation snapshot (phase-latency spans,
		// any engine counters) as an obs record.
		if err := trace.AppendObs(f, obs.Default().Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("trace written to %s\n\n", *traceOut)
	}

	// 1. Point-set check.
	fmt.Printf("point set    : %5.2f%% of %d sample points %d-covered (DECOR target: 100%%)\n",
		100*m.CoverageFrac(*k), m.NumPoints(), *k)

	// 2. Exact perimeter-coverage decision.
	v := percover.Verify(m, *k)
	if v.Covered {
		fmt.Printf("perimeter    : field PROVEN %d-covered analytically (%d midpoint checks)\n", *k, v.Checks)
	} else {
		fmt.Printf("perimeter    : NOT fully %d-covered; witness at %s (%d checks)\n", *k, v.Witness, v.Checks)
	}

	// 3. Lattice scan.
	unc := percover.LatticeUncovered(m, *k, *lattice)
	fmt.Printf("lattice %dx%d: %d under-covered lattice points (%.4f%% of the field)\n",
		*lattice, *lattice, len(unc), 100*float64(len(unc))/float64(*lattice**lattice))

	// Reliability report.
	rep := reliability.Analyze(m, *q)
	fmt.Printf("\nreliability at q=%.2f:\n", *q)
	fmt.Printf("  worst point survives with p=%.4f (1-q^k floor: %.4f)\n",
		rep.PointReliability.Min, reliability.PointReliability(*k, *q))
	fmt.Printf("  expected 1-coverage after failures: %.2f%%\n", 100*rep.ExpectedCovered)
	fmt.Printf("  expected %d-coverage after failures: %.2f%%\n", *k, 100*rep.ExpectedKCovered)
	kNeeded, err := reliability.KForTarget(*q, 0.99)
	if err == nil {
		fmt.Printf("  k needed for 99%% point reliability at this q: %d\n", kNeeded)
	}
}

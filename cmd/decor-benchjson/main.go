// Command decor-benchjson converts `go test -bench` text output (read
// from stdin) into a stable JSON document, so benchmark baselines can be
// committed and diffed — the `make bench-json` target writes
// BENCH_core.json with it.
//
// Repeated samples of the same benchmark (-count=N) are aggregated into
// min/mean/max ns/op; B/op, allocs/op and any custom metrics keep the
// values of the last sample (they are deterministic for these benches).
//
// Usage:
//
//	go test -bench=. -benchtime=1x -count=3 ./... | decor-benchjson -o BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one aggregated benchmark result.
type Entry struct {
	Pkg         string             `json:"pkg"`
	Name        string             `json:"name"`
	Samples     int                `json:"samples"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     Stat               `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Stat summarizes the ns/op samples of one benchmark.
type Stat struct {
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// benchLine matches "BenchmarkX/sub-8   10   123 ns/op   [pairs...]".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("o", "-", `output file ("-" = stdout)`)
	flag.Parse()

	entries := map[string]*Entry{} // keyed by pkg + "\t" + name
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		mt := benchLine.FindStringSubmatch(line)
		if mt == nil {
			continue
		}
		name := mt[1]
		iters, _ := strconv.ParseInt(mt[2], 10, 64)
		key := pkg + "\t" + name
		e := entries[key]
		if e == nil {
			e = &Entry{Pkg: pkg, Name: name, NsPerOp: Stat{Min: -1}}
			entries[key] = e
		}
		e.Samples++
		e.Iterations = iters
		// The tail is "value unit" pairs: "123 ns/op 4 B/op 0.5 custom".
		fields := strings.Fields(mt[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				if e.NsPerOp.Min < 0 || v < e.NsPerOp.Min {
					e.NsPerOp.Min = v
				}
				if v > e.NsPerOp.Max {
					e.NsPerOp.Max = v
				}
				// Accumulate the mean incrementally in Mean.
				e.NsPerOp.Mean += (v - e.NsPerOp.Mean) / float64(e.Samples)
			case "B/op":
				b := v
				e.BytesPerOp = &b
			case "allocs/op":
				a := v
				e.AllocsPerOp = &a
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	list := make([]*Entry, len(keys))
	for i, k := range keys {
		list[i] = entries[k]
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(list); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

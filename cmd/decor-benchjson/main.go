// Command decor-benchjson converts `go test -bench` text output (read
// from stdin) into a stable JSON document, so benchmark baselines can be
// committed and diffed — the `make bench-json` target writes
// BENCH_core.json with it.
//
// Repeated samples of the same benchmark (-count=N) are aggregated into
// min/mean/max ns/op; B/op, allocs/op and any custom metrics keep the
// values of the last sample (they are deterministic for these benches).
//
// Usage:
//
//	go test -bench=. -benchtime=1x -count=3 ./... | decor-benchjson -o BENCH_core.json
//
// With -diff, it instead compares two committed benchmark JSON files and
// prints an old-vs-new ratio table (scripts/benchstat.sh drives this as
// the `make check` performance smoke — report only by default):
//
//	decor-benchjson -diff BENCH_sim.json /tmp/fresh.json
//
// Adding -gate turns the report into a CI gate for matching benchmarks:
// exit 1 if any of them regressed in mean ns/op beyond -max-regress
// percent (the tracing-overhead gate in `make check` uses this to pin
// the recorder-disabled engine hot path):
//
//	decor-benchjson -diff -gate 'EngineRun/actors=64$' -max-regress 25 old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one aggregated benchmark result.
type Entry struct {
	Pkg         string             `json:"pkg"`
	Name        string             `json:"name"`
	Samples     int                `json:"samples"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     Stat               `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Stat summarizes the ns/op samples of one benchmark.
type Stat struct {
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// benchLine matches "BenchmarkX/sub-8   10   123 ns/op   [pairs...]".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("o", "-", `output file ("-" = stdout)`)
	diff := flag.Bool("diff", false, "compare two benchmark JSON files (args: old new) and print a ratio table")
	gate := flag.String("gate", "", "with -diff: regexp of benchmark names to gate on; exit 1 if any regresses past -max-regress")
	maxRegress := flag.Float64("max-regress", 25, "with -gate: allowed mean ns/op regression in percent")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "decor-benchjson: -diff needs exactly two JSON files (old new)")
			os.Exit(2)
		}
		var gateRe *regexp.Regexp
		if *gate != "" {
			var err error
			if gateRe, err = regexp.Compile(*gate); err != nil {
				fmt.Fprintf(os.Stderr, "decor-benchjson: bad -gate %q: %v\n", *gate, err)
				os.Exit(2)
			}
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), gateRe, *maxRegress))
	}

	entries := map[string]*Entry{} // keyed by pkg + "\t" + name
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		mt := benchLine.FindStringSubmatch(line)
		if mt == nil {
			continue
		}
		name := mt[1]
		iters, _ := strconv.ParseInt(mt[2], 10, 64)
		key := pkg + "\t" + name
		e := entries[key]
		if e == nil {
			e = &Entry{Pkg: pkg, Name: name, NsPerOp: Stat{Min: -1}}
			entries[key] = e
		}
		e.Samples++
		e.Iterations = iters
		// The tail is "value unit" pairs: "123 ns/op 4 B/op 0.5 custom".
		fields := strings.Fields(mt[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				if e.NsPerOp.Min < 0 || v < e.NsPerOp.Min {
					e.NsPerOp.Min = v
				}
				if v > e.NsPerOp.Max {
					e.NsPerOp.Max = v
				}
				// Accumulate the mean incrementally in Mean.
				e.NsPerOp.Mean += (v - e.NsPerOp.Mean) / float64(e.Samples)
			case "B/op":
				b := v
				e.BytesPerOp = &b
			case "allocs/op":
				a := v
				e.AllocsPerOp = &a
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	list := make([]*Entry, len(keys))
	for i, k := range keys {
		list[i] = entries[k]
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(list); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// loadEntries reads one committed benchmark JSON document.
func loadEntries(path string) []*Entry {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var list []*Entry
	if err := json.Unmarshal(b, &list); err != nil {
		fmt.Fprintf(os.Stderr, "decor-benchjson: %s: %v\n", path, err)
		os.Exit(1)
	}
	return list
}

// runDiff prints an old-vs-new comparison of two benchmark JSON files:
// mean ns/op with the speedup ratio, and allocs/op with its reduction
// factor. Benchmarks present in only one file are listed but not
// compared. Without a gate it is a report and returns 0; with gateRe set
// it returns 1 when any matching benchmark's mean ns/op regressed by more
// than maxRegress percent.
func runDiff(oldPath, newPath string, gateRe *regexp.Regexp, maxRegress float64) int {
	oldList, newList := loadEntries(oldPath), loadEntries(newPath)
	oldBy := map[string]*Entry{}
	for _, e := range oldList {
		oldBy[e.Pkg+"\t"+e.Name] = e
	}
	fmt.Printf("%-44s %14s %14s %9s %12s %12s %9s\n",
		"benchmark ("+oldPath+" vs "+newPath+")", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs", "factor")
	seen := map[string]bool{}
	failures := 0
	for _, e := range newList {
		key := e.Pkg + "\t" + e.Name
		seen[key] = true
		o := oldBy[key]
		if o == nil {
			fmt.Printf("%-44s %14s %14.0f %9s\n", e.Name, "(new)", e.NsPerOp.Mean, "-")
			continue
		}
		if gateRe != nil && gateRe.MatchString(e.Name) && o.NsPerOp.Mean > 0 {
			regress := (e.NsPerOp.Mean/o.NsPerOp.Mean - 1) * 100
			if regress > maxRegress {
				failures++
				fmt.Printf("GATE FAIL %s: mean ns/op %.0f -> %.0f (+%.1f%%, allowed %.1f%%)\n",
					e.Name, o.NsPerOp.Mean, e.NsPerOp.Mean, regress, maxRegress)
			}
		}
		speed := "-"
		if e.NsPerOp.Mean > 0 {
			speed = fmt.Sprintf("%.2fx", o.NsPerOp.Mean/e.NsPerOp.Mean)
		}
		oa, na := "-", "-"
		factor := "-"
		if o.AllocsPerOp != nil && e.AllocsPerOp != nil {
			oa = fmt.Sprintf("%.0f", *o.AllocsPerOp)
			na = fmt.Sprintf("%.0f", *e.AllocsPerOp)
			if *e.AllocsPerOp > 0 {
				factor = fmt.Sprintf("%.1fx", *o.AllocsPerOp / *e.AllocsPerOp)
			} else if *o.AllocsPerOp > 0 {
				factor = "inf"
			} else {
				factor = "1.0x"
			}
		}
		fmt.Printf("%-44s %14.0f %14.0f %9s %12s %12s %9s\n",
			e.Name, o.NsPerOp.Mean, e.NsPerOp.Mean, speed, oa, na, factor)
	}
	for _, e := range oldList {
		if !seen[e.Pkg+"\t"+e.Name] {
			fmt.Printf("%-44s %14.0f %14s\n", e.Name, e.NsPerOp.Mean, "(gone)")
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "decor-benchjson: %d benchmark(s) regressed past the gate\n", failures)
		return 1
	}
	return 0
}

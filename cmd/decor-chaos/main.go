// Command decor-chaos runs seeded chaos scenarios against the DECOR
// protocols and reports an invariant verdict per run. It is the replay
// tool for any failing seed surfaced by the property tests, the fuzzer,
// or `make chaos-smoke`: the same arch+seed (plus any plan overrides)
// reproduces the identical trace, byte for byte.
//
// Examples:
//
//	decor-chaos -arch grid -seed 7
//	decor-chaos -arch all -seeds 16 -json
//	decor-chaos -arch voronoi -seed 3 -dup-prob 0.4 -loss 0.2
//	decor-chaos -arch selfheal -seed 9 -no-verify
//	decor-chaos -arch selfheal -seed 9 -checkpoint-every 25 -checkpoint-to run.snap
//	decor-chaos -resume-from run.snap
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"decor/internal/chaos"
	"decor/internal/obs"
	"decor/internal/sim"
)

func main() {
	var (
		arch     = flag.String("arch", "grid", "architecture: grid|voronoi|selfheal|all")
		seed     = flag.Uint64("seed", 1, "first seed")
		seeds    = flag.Int("seeds", 1, "number of consecutive seeds to sweep")
		jsonOut  = flag.Bool("json", false, "emit one JSON verdict per line")
		noVerify = flag.Bool("no-verify", false, "skip the determinism double-run")
		parallel = flag.Int("parallel", 0, "worker goroutines sharding the seed sweep (0 = GOMAXPROCS); reports print in sweep order either way")

		// Plan overrides; negative means keep the seed-derived value.
		delayProb = flag.Float64("delay-prob", -1, "override message delay probability")
		delayMax  = flag.Float64("delay-max", -1, "override maximum delay jitter (virtual seconds)")
		dupProb   = flag.Float64("dup-prob", -1, "override message duplication probability")
		until     = flag.Float64("until", -1, "override probabilistic-fault horizon")
		loss      = flag.Float64("loss", -1, "override uniform loss rate")
		burst     = flag.String("burst", "", "override burst channel as pG2B,pB2G,lossGood,lossBad ('off' to disable)")

		// Checkpoint/resume (single run only): the snapshot is the complete
		// run state, so a resumed run finishes with the identical verdict
		// and trace hash the uninterrupted one would have produced.
		ckEvery    = flag.Float64("checkpoint-every", 0, "emit a snapshot every this many virtual seconds (requires -checkpoint-to)")
		ckTo       = flag.String("checkpoint-to", "", "file holding the latest snapshot (atomically replaced at each boundary)")
		resumeFrom = flag.String("resume-from", "", "resume from a snapshot file; scenario flags are ignored, -checkpoint-* still apply")
	)
	flag.Parse()

	if (*ckEvery > 0) != (*ckTo != "") {
		fmt.Fprintln(os.Stderr, "decor-chaos: -checkpoint-every and -checkpoint-to must be used together")
		os.Exit(2)
	}
	var ckFn chaos.CheckpointFunc
	if *ckTo != "" {
		ckFn = checkpointWriter(*ckTo)
	}

	if *resumeFrom != "" {
		data, err := os.ReadFile(*resumeFrom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "decor-chaos: %v\n", err)
			os.Exit(2)
		}
		v, err := chaos.Resume(data, sim.Time(*ckEvery), ckFn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "decor-chaos: resume: %v\n", err)
			os.Exit(2)
		}
		report(v, true, *jsonOut, false)
		if !v.OK {
			os.Exit(1)
		}
		return
	}

	archs := []string{*arch}
	if *arch == "all" {
		archs = chaos.Archs()
	}
	for _, a := range archs {
		valid := false
		for _, known := range chaos.Archs() {
			if a == known {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "decor-chaos: unknown arch %q (want %s|all)\n", a, strings.Join(chaos.Archs(), "|"))
			os.Exit(2)
		}
	}

	// Build the full (arch, seed) scenario list up front, then shard it
	// across the worker pool; results come back in list order, so output
	// is byte-identical to a sequential sweep for any -parallel value.
	var scs []chaos.Scenario
	for _, a := range archs {
		for s := *seed; s < *seed+uint64(*seeds); s++ {
			sc := chaos.DefaultScenario(a, s)
			applyOverrides(&sc, *delayProb, *delayMax, *dupProb, *until, *loss, *burst)
			if err := sc.Plan.Validate(); err != nil {
				fmt.Fprintf(os.Stderr, "decor-chaos: invalid plan after overrides: %v\n", err)
				os.Exit(2)
			}
			scs = append(scs, sc)
		}
	}
	if *ckEvery > 0 {
		if len(scs) != 1 {
			fmt.Fprintln(os.Stderr, "decor-chaos: -checkpoint-every needs a single run (one arch, -seeds 1)")
			os.Exit(2)
		}
		v := chaos.RunCheckpointed(scs[0], sim.Time(*ckEvery), ckFn)
		report(v, true, *jsonOut, false)
		if !v.OK {
			os.Exit(1)
		}
		return
	}

	failures := 0
	for _, res := range chaos.Sweep(scs, !*noVerify, *parallel) {
		if !res.Verdict.OK || !res.ReplayOK {
			failures++
		}
		report(res.Verdict, res.ReplayOK, *jsonOut, !*noVerify)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "decor-chaos: %d failing run(s)\n", failures)
		os.Exit(1)
	}
}

// checkpointWriter persists each snapshot over the previous one via
// write-then-rename, so a kill mid-write leaves the last good snapshot
// intact and -resume-from always reads a sealed envelope.
func checkpointWriter(path string) chaos.CheckpointFunc {
	return func(at sim.Time, data []byte) {
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "decor-chaos: checkpoint at t=%v: %v\n", at, err)
			return
		}
		if err := os.Rename(tmp, path); err != nil {
			fmt.Fprintf(os.Stderr, "decor-chaos: checkpoint at t=%v: %v\n", at, err)
		}
	}
}

func applyOverrides(sc *chaos.Scenario, delayProb, delayMax, dupProb, until, loss float64, burst string) {
	if delayProb >= 0 {
		sc.Plan.DelayProb = delayProb
	}
	if delayMax >= 0 {
		sc.Plan.DelayMax = sim.Time(delayMax)
	}
	if dupProb >= 0 {
		sc.Plan.DupProb = dupProb
	}
	if until >= 0 {
		sc.Plan.Until = sim.Time(until)
	}
	if loss >= 0 {
		sc.Loss = loss
	}
	switch {
	case burst == "off":
		sc.Plan.Burst = nil
	case burst != "":
		var g sim.GilbertElliott
		if _, err := fmt.Sscanf(burst, "%f,%f,%f,%f", &g.PGoodToBad, &g.PBadToGood, &g.LossGood, &g.LossBad); err != nil {
			fmt.Fprintf(os.Stderr, "decor-chaos: bad -burst %q: %v\n", burst, err)
			os.Exit(2)
		}
		sc.Plan.Burst = &g
	}
}

func report(v chaos.Verdict, replayOK, jsonOut, verified bool) {
	if jsonOut {
		out := struct {
			chaos.Verdict
			ReplayOK bool `json:"replay_ok"`
		}{v, replayOK}
		b, _ := json.Marshal(out)
		fmt.Println(string(b))
		return
	}
	status := "ok"
	if !v.OK {
		status = "FAIL"
	}
	fmt.Printf("%-8s seed=%-4d %-4s converged=%-5v placed=%-4d seeds=%d repairs=%-3d t=%.1f trace=%s…",
		v.Arch, v.Seed, status, v.Converged, v.Placed, v.Seeds, v.Repairs, float64(v.FinalTime), v.TraceHash[:12])
	if verified {
		if replayOK {
			fmt.Printf(" replay=identical")
		} else {
			fmt.Printf(" replay=DIVERGED")
		}
	}
	fmt.Println()
	for _, viol := range v.Violations {
		fmt.Printf("  violation: %s\n", viol)
	}
	if len(v.Timeline) > 0 {
		fmt.Printf("  flight timeline (last %d events):\n", len(v.Timeline))
		var sb strings.Builder
		obs.WriteTimeline(&sb, v.Timeline)
		for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
			fmt.Printf("    %s\n", line)
		}
	}
}

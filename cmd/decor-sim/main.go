// Command decor-sim runs a single DECOR deployment/restoration scenario
// and prints a report.
//
// Examples:
//
//	decor-sim -k 3 -method voronoi-big
//	decor-sim -k 2 -method grid-small -fail-area 24 -restore voronoi-small
//	decor-sim -k 1 -method centralized -ascii
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"decor"
	"decor/internal/geom"
	"decor/internal/obs"
	"decor/internal/tour"
)

func main() {
	var (
		fieldSide  = flag.Float64("field", 100, "edge length of the square field")
		k          = flag.Int("k", 3, "coverage requirement k")
		rs         = flag.Float64("rs", 4, "sensing radius")
		rc         = flag.Float64("rc", 0, "communication radius (default 2*rs)")
		points     = flag.Int("points", 2000, "low-discrepancy sample points")
		gen        = flag.String("gen", "halton", "point generator: halton|hammersley|sobol|uniform|jittered|lhs")
		initial    = flag.Int("initial", 200, "randomly pre-deployed sensors")
		method     = flag.String("method", "voronoi-big", "deployment method: "+strings.Join(decor.MethodNames(), "|"))
		seed       = flag.Uint64("seed", 1, "random seed")
		failArea   = flag.Float64("fail-area", 0, "after deploying, destroy a disc of this radius at the field center")
		failRandom = flag.Float64("fail-random", 0, "after deploying, destroy this fraction of nodes at random")
		restore    = flag.String("restore", "", "method used to restore coverage after failures (default: same as -method)")
		ascii      = flag.Bool("ascii", false, "print an ASCII rendering of the final field")
		showTour   = flag.Bool("tour", false, "plan and report the deployment robot's tour over the placed sensors")
	)
	var ofl obs.RunFlags
	ofl.Register(flag.CommandLine)
	flag.Parse()
	if err := ofl.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := ofl.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	d, err := decor.NewDeployment(decor.Params{
		FieldSide: *fieldSide, K: *k, Rs: *rs, Rc: *rc,
		NumPoints: *points, Generator: *gen, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	d.ScatterRandom(*initial)
	fmt.Printf("field %.0fx%.0f, %d points (%s), rs=%g, k=%d, %d initial sensors\n",
		*fieldSide, *fieldSide, *points, *gen, *rs, *k, *initial)
	fmt.Printf("initial coverage: %.1f%% k-covered, %.1f%% 1-covered\n",
		100*d.Coverage(*k), 100*d.Coverage(1))

	rep, err := d.Deploy(*method)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	printReport("deployment", rep, d, *k)
	if *showTour {
		printTour(rep)
	}

	if *failArea > 0 || *failRandom > 0 {
		if *failArea > 0 {
			dead := d.FailArea(decor.Point{X: *fieldSide / 2, Y: *fieldSide / 2}, *failArea)
			fmt.Printf("\narea failure: disc r=%g destroyed %d sensors\n", *failArea, len(dead))
		}
		if *failRandom > 0 {
			dead := d.FailRandom(*failRandom)
			fmt.Printf("\nrandom failure: destroyed %d sensors (%.0f%%)\n", len(dead), 100**failRandom)
		}
		fmt.Printf("post-failure coverage: %.1f%% k-covered, %.1f%% 1-covered\n",
			100*d.Coverage(*k), 100*d.Coverage(1))
		rm := *restore
		if rm == "" {
			rm = *method
		}
		rrep, err := d.Deploy(rm)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		printReport("restoration", rrep, d, *k)
	}

	if *ascii {
		fmt.Println()
		fmt.Print(d.ASCII(100))
	}
}

// printTour plans the deployment robot's route over the new sensors
// (nearest-neighbor + 2-opt) from the field origin.
func printTour(rep decor.Report) {
	sites := make([]geom.Point, len(rep.Placements))
	for i, p := range rep.Placements {
		sites[i] = geom.Point(p)
	}
	t := tour.Plan(geom.Point{}, sites, 0)
	fmt.Printf("  robot tour: %d stops, %.1f field units of travel\n",
		len(t.Stops), t.Length())
}

func printReport(phase string, rep decor.Report, d *decor.Deployment, k int) {
	fmt.Printf("\n%s with %s:\n", phase, rep.Method)
	fmt.Printf("  placed %d sensors (%d total), %d rounds, %d seeded\n",
		rep.Placed, rep.TotalSensors, rep.Rounds, rep.Seeded)
	fmt.Printf("  messages: %d total, %.1f per cell\n", rep.Messages, rep.MessagesPerCell)
	fmt.Printf("  coverage: %.1f%% k-covered; redundant sensors: %d\n",
		100*d.Coverage(k), len(d.Redundant()))
}

// Command decor-sim runs a single DECOR deployment/restoration scenario
// and prints a report.
//
// Examples:
//
//	decor-sim -k 3 -method voronoi-big
//	decor-sim -k 2 -method grid-small -fail-area 24 -restore voronoi-small
//	decor-sim -k 1 -method centralized -ascii
//	decor-sim -method grid-small,voronoi-big -parallel 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"decor"
	"decor/internal/geom"
	"decor/internal/obs"
	"decor/internal/shard"
	"decor/internal/tour"
)

func main() {
	var (
		fieldSide  = flag.Float64("field", 100, "edge length of the square field")
		k          = flag.Int("k", 3, "coverage requirement k")
		rs         = flag.Float64("rs", 4, "sensing radius")
		rc         = flag.Float64("rc", 0, "communication radius (default 2*rs)")
		points     = flag.Int("points", 2000, "low-discrepancy sample points")
		gen        = flag.String("gen", "halton", "point generator: halton|hammersley|sobol|uniform|jittered|lhs")
		initial    = flag.Int("initial", 200, "randomly pre-deployed sensors")
		method     = flag.String("method", "voronoi-big", "deployment method, or a comma-separated list run as independent scenarios: "+strings.Join(decor.MethodNames(), "|"))
		seed       = flag.Uint64("seed", 1, "random seed")
		failArea   = flag.Float64("fail-area", 0, "after deploying, destroy a disc of this radius at the field center")
		failRandom = flag.Float64("fail-random", 0, "after deploying, destroy this fraction of nodes at random")
		restore    = flag.String("restore", "", "method used to restore coverage after failures (default: same as -method)")
		ascii      = flag.Bool("ascii", false, "print an ASCII rendering of the final field")
		showTour   = flag.Bool("tour", false, "plan and report the deployment robot's tour over the placed sensors")
		parallel   = flag.Int("parallel", 0, "worker goroutines when -method lists several scenarios (0 = GOMAXPROCS); reports print in list order either way")
		ckTo       = flag.String("checkpoint-to", "", "write the final field (sensors + RNG state) to this snapshot file")
		resumeFrom = flag.String("resume-from", "", "start from a field snapshot instead of a fresh scatter; -field/-k/-rs/-points/-gen/-seed/-initial are taken from the snapshot")
	)
	var ofl obs.RunFlags
	ofl.Register(flag.CommandLine)
	flag.Parse()
	if err := ofl.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := ofl.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	methods := strings.Split(*method, ",")
	for i := range methods {
		methods[i] = strings.TrimSpace(methods[i])
	}
	if (*ckTo != "" || *resumeFrom != "") && len(methods) > 1 {
		fmt.Fprintln(os.Stderr, "decor-sim: -checkpoint-to/-resume-from need a single -method")
		os.Exit(2)
	}
	sc := scenario{
		fieldSide: *fieldSide, k: *k, rs: *rs, rc: *rc,
		points: *points, gen: *gen, initial: *initial, seed: *seed,
		failArea: *failArea, failRandom: *failRandom, restore: *restore,
		ascii: *ascii, showTour: *showTour,
		checkpointTo: *ckTo, resumeFrom: *resumeFrom,
	}

	// Each method is an independent scenario over its own deployment, so
	// a list fans out across workers; buffered reports print in list
	// order, making the output independent of the worker count.
	outs := make([]string, len(methods))
	errs := make([]error, len(methods))
	forEach(len(methods), *parallel, func(i int) {
		var b strings.Builder
		errs[i] = sc.run(&b, methods[i])
		outs[i] = b.String()
	})
	for i := range methods {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(outs[i])
		if errs[i] != nil {
			fmt.Fprintln(os.Stderr, errs[i])
			os.Exit(2)
		}
	}
}

// forEach runs job(0..n-1) across up to workers goroutines (0 =
// GOMAXPROCS). Jobs write only to their own result slots.
func forEach(n, workers int, job func(i int)) {
	shard.ForEach(n, workers, job)
}

// scenario is one full deploy/fail/restore run, written to w.
type scenario struct {
	fieldSide, rs, rc    float64
	k, points, initial   int
	gen                  string
	seed                 uint64
	failArea, failRandom float64
	restore              string
	ascii, showTour      bool
	checkpointTo         string
	resumeFrom           string
}

// buildField constructs the scenario's starting deployment: a fresh
// scatter, or — with -resume-from — the exact field a previous run
// checkpointed, mid-stream RNG included, so continuing a run here is
// indistinguishable from never having stopped it.
func (s scenario) buildField(w io.Writer) (*decor.Deployment, error) {
	if s.resumeFrom != "" {
		data, err := os.ReadFile(s.resumeFrom)
		if err != nil {
			return nil, err
		}
		d, err := decor.RestoreDeployment(data)
		if err != nil {
			return nil, fmt.Errorf("decor-sim: resume: %w", err)
		}
		p := d.Params()
		fmt.Fprintf(w, "resumed field %.0fx%.0f, %d points (%s), rs=%g, k=%d, %d sensors\n",
			p.FieldSide, p.FieldSide, p.NumPoints, p.Generator, p.Rs, p.K, d.NumSensors())
		return d, nil
	}
	d, err := decor.NewDeployment(decor.Params{
		FieldSide: s.fieldSide, K: s.k, Rs: s.rs, Rc: s.rc,
		NumPoints: s.points, Generator: s.gen, Seed: s.seed,
	})
	if err != nil {
		return nil, err
	}
	d.ScatterRandom(s.initial)
	fmt.Fprintf(w, "field %.0fx%.0f, %d points (%s), rs=%g, k=%d, %d initial sensors\n",
		s.fieldSide, s.fieldSide, s.points, s.gen, s.rs, s.k, s.initial)
	return d, nil
}

func (s scenario) run(w io.Writer, method string) error {
	d, err := s.buildField(w)
	if err != nil {
		return err
	}
	if s.resumeFrom != "" {
		// Geometry flags are snapshot-owned on resume.
		p := d.Params()
		s.k, s.fieldSide = p.K, p.FieldSide
	}
	fmt.Fprintf(w, "initial coverage: %.1f%% k-covered, %.1f%% 1-covered\n",
		100*d.Coverage(s.k), 100*d.Coverage(1))

	rep, err := d.Deploy(method)
	if err != nil {
		return err
	}
	printReport(w, "deployment", rep, d, s.k)
	if s.showTour {
		printTour(w, rep)
	}

	if s.failArea > 0 || s.failRandom > 0 {
		if s.failArea > 0 {
			dead := d.FailArea(decor.Point{X: s.fieldSide / 2, Y: s.fieldSide / 2}, s.failArea)
			fmt.Fprintf(w, "\narea failure: disc r=%g destroyed %d sensors\n", s.failArea, len(dead))
		}
		if s.failRandom > 0 {
			dead := d.FailRandom(s.failRandom)
			fmt.Fprintf(w, "\nrandom failure: destroyed %d sensors (%.0f%%)\n", len(dead), 100*s.failRandom)
		}
		fmt.Fprintf(w, "post-failure coverage: %.1f%% k-covered, %.1f%% 1-covered\n",
			100*d.Coverage(s.k), 100*d.Coverage(1))
		rm := s.restore
		if rm == "" {
			rm = method
		}
		rrep, err := d.Deploy(rm)
		if err != nil {
			return err
		}
		printReport(w, "restoration", rrep, d, s.k)
	}

	if s.ascii {
		fmt.Fprintln(w)
		fmt.Fprint(w, d.ASCII(100))
	}
	if s.checkpointTo != "" {
		if err := os.WriteFile(s.checkpointTo, d.Snapshot(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nfield snapshot (%d sensors) written to %s\n",
			d.NumSensors(), s.checkpointTo)
	}
	return nil
}

// printTour plans the deployment robot's route over the new sensors
// (nearest-neighbor + 2-opt) from the field origin.
func printTour(w io.Writer, rep decor.Report) {
	sites := make([]geom.Point, len(rep.Placements))
	for i, p := range rep.Placements {
		sites[i] = geom.Point(p)
	}
	t := tour.Plan(geom.Point{}, sites, 0)
	fmt.Fprintf(w, "  robot tour: %d stops, %.1f field units of travel\n",
		len(t.Stops), t.Length())
}

func printReport(w io.Writer, phase string, rep decor.Report, d *decor.Deployment, k int) {
	fmt.Fprintf(w, "\n%s with %s:\n", phase, rep.Method)
	fmt.Fprintf(w, "  placed %d sensors (%d total), %d rounds, %d seeded\n",
		rep.Placed, rep.TotalSensors, rep.Rounds, rep.Seeded)
	fmt.Fprintf(w, "  messages: %d total, %.1f per cell\n", rep.Messages, rep.MessagesPerCell)
	fmt.Fprintf(w, "  coverage: %.1f%% k-covered; redundant sensors: %d\n",
		100*d.Coverage(k), len(d.Redundant()))
}

// Command decor-serve exposes the DECOR planner as a long-running HTTP
// JSON service (see internal/service and DESIGN.md §9).
//
//	POST /v1/plan                     field + sensors + k + method → placement plan
//	POST /v1/repair                   deployment + failed IDs      → restoration plan
//	POST /v1/fields                   create a stateful field session (201 + initial delta)
//	POST /v1/fields/{id}/events       stream NDJSON failure events in, delta plans out
//	GET  /v1/fields/{id}/stream       live SSE delta feed (?from_seq= ring replay)
//	GET  /v1/fields/{id}              session metadata
//	DELETE /v1/fields/{id}            drop the session
//	GET  /healthz                     liveness (503 while draining)
//	GET  /metrics                     live Prometheus scrape
//
// Examples:
//
//	decor-serve -addr :8080
//	decor-serve -addr 127.0.0.1:0 -workers 4 -queue 64
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops accepting,
// in-flight plans run to completion (bounded by -drain-timeout), then the
// process exits 0.
//
// Every response carries its trace ID in X-Decor-Trace; GET /debug/traces
// serves recent span trees (summarizable offline with decor-trace) and
// GET /debug/flight the structured flight-recorder events. SIGQUIT dumps
// both to stderr without stopping the server. -pprof additionally mounts
// net/http/pprof under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"decor/internal/obs"
	"decor/internal/service"
	"decor/internal/session"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port; the chosen address is printed)")
		workers      = flag.Int("workers", 0, "planner worker goroutines (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "admission queue depth (0 = default 256); a full queue answers 503 + Retry-After")
		cacheEntries = flag.Int("cache", 0, "LRU plan cache entries (0 = default 512, negative disables)")
		maxBody      = flag.Int64("max-body", 0, "request body size cap in bytes (0 = default 1 MiB); larger bodies get 413")
		maxPoints    = flag.Int("max-points", 0, "per-request num_points cap (0 = default)")
		maxSensors   = flag.Int("max-sensors", 0, "per-request sensors+scatter cap (0 = default)")
		defTimeout   = flag.Duration("timeout", 0, "default per-request planning deadline (0 = built-in default)")
		maxTimeout   = flag.Duration("max-timeout", 0, "ceiling on client-requested timeout_ms (0 = built-in default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a TERM/INT drain may take before in-flight plans are aborted")
		enablePprof  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		traceCap     = flag.Int("trace-cap", 4096, "trace ring capacity in spans (rounded up to a power of two)")

		sessShards    = flag.Int("session-shards", 0, "field-session worker shards (0 = GOMAXPROCS)")
		sessMax       = flag.Int("session-max", 0, "global live field-session cap (0 = default 4096)")
		sessMaxTenant = flag.Int("session-max-per-tenant", 0, "per-tenant field-session cap (0 = default 64); excess creates get 429")
		sessIdleTTL   = flag.Duration("session-idle-ttl", 0, "idle time before a session is snapshotted and evicted (0 = built-in default)")
		sessNoFast    = flag.Bool("session-no-fast-restore", false, "restore evicted sessions by full event-log replay instead of the binary fast path")
	)
	var ofl obs.RunFlags
	ofl.Register(flag.CommandLine)
	flag.Parse()
	if err := ofl.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer func() {
		if err := ofl.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	tracer := obs.NewTracer(*traceCap)
	svc := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		Limits: service.Limits{
			MaxBodyBytes:   *maxBody,
			MaxPoints:      *maxPoints,
			MaxSensors:     *maxSensors,
			DefaultTimeout: *defTimeout,
			MaxTimeout:     *maxTimeout,
		},
		Sessions: session.Config{
			Shards:               *sessShards,
			MaxSessions:          *sessMax,
			MaxSessionsPerTenant: *sessMaxTenant,
			IdleTTL:              *sessIdleTTL,
			DisableFastRestore:   *sessNoFast,
		},
		Tracer:      tracer,
		EnablePprof: *enablePprof,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// Parseable by scripts (serve-smoke) and humans alike; with -addr :0
	// this is the only way to learn the port.
	fmt.Printf("decor-serve listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// SIGQUIT is a live post-mortem, not a shutdown: dump the flight
	// recorder and recent traces to stderr and keep serving.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			fmt.Fprintln(os.Stderr, "decor-serve: SIGQUIT flight timeline (newest 100):")
			obs.WriteTimeline(os.Stderr, obs.Tail(svc.Config().Flight.Dump(), 100))
			fmt.Fprintln(os.Stderr, "decor-serve: recent traces:")
			for i, ts := range tracer.Summaries() {
				if i >= 20 {
					break
				}
				fmt.Fprintf(os.Stderr, "  %s %-12s %8.3fms %d spans\n",
					ts.Trace, ts.Root, float64(ts.DurNS)/1e6, ts.Spans)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("decor-serve: %s, draining (max %s)\n", s, *drainTimeout)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// Drain order matters: stop the listener and wait for in-flight
	// handlers (which wait for their jobs), then retire the worker pool.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "decor-serve: http shutdown: %v\n", err)
		code = 1
	}
	if err := svc.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "decor-serve: pool shutdown: %v\n", err)
		code = 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		code = 1
	}
	if code == 0 {
		fmt.Println("decor-serve: drained, bye")
	}
	return code
}

// Command decor-trace summarizes a span dump produced by the obs tracer:
// a JSONL file written by Tracer.WriteJSONL, a decor-serve
// /debug/traces?format=jsonl endpoint, or stdin.
//
// The report has three parts: a per-name span aggregate (count, total,
// self time — total minus child time, i.e. each phase's own contribution
// to the critical path), the slowest traces by root duration, and an
// indented span tree drill-down of the slowest trace (or of the trace
// named with -trace, e.g. straight from an X-Decor-Trace response
// header).
//
// Examples:
//
//	decor-trace spans.jsonl
//	decor-trace -url http://127.0.0.1:8080/debug/traces
//	curl -s localhost:8080/debug/traces?format=jsonl | decor-trace
//	decor-trace -trace 01c8f9a2b3d4e5f6 spans.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"decor/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		url     = flag.String("url", "", "fetch spans from a /debug/traces endpoint (?format=jsonl is appended if missing)")
		traceID = flag.String("trace", "", "drill into this trace ID instead of the slowest one")
		top     = flag.Int("top", 10, "rows in the span aggregate and slowest-trace tables")
	)
	flag.Parse()

	spans, err := load(*url, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "decor-trace:", err)
		return 1
	}
	if len(spans) == 0 {
		fmt.Fprintln(os.Stderr, "decor-trace: no spans in input")
		return 1
	}

	byTrace := map[string][]obs.SpanRecord{}
	for _, sp := range spans {
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}

	printAggregate(spans, *top)
	slow := printSlowest(byTrace, *top)

	target := *traceID
	if target == "" {
		target = slow
	}
	if target != "" {
		if _, ok := byTrace[target]; !ok {
			fmt.Fprintf(os.Stderr, "decor-trace: trace %s not in input (evicted from the ring?)\n", target)
			return 1
		}
		fmt.Printf("\ntrace %s\n", target)
		printTree(byTrace[target])
	}
	return 0
}

// load reads spans from -url, a file argument, or stdin.
func load(url, path string) ([]obs.SpanRecord, error) {
	var r io.Reader
	switch {
	case url != "":
		if !strings.Contains(url, "format=jsonl") {
			sep := "?"
			if strings.Contains(url, "?") {
				sep = "&"
			}
			url += sep + "format=jsonl"
		}
		resp, err := http.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: %s", url, resp.Status)
		}
		r = resp.Body
	case path != "" && path != "-":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	default:
		r = os.Stdin
	}

	var spans []obs.SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := strings.TrimSpace(sc.Text())
		if b == "" {
			continue
		}
		var sp obs.SpanRecord
		if err := json.Unmarshal([]byte(b), &sp); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		spans = append(spans, sp)
	}
	return spans, sc.Err()
}

// selfNS returns each span's self time: duration minus the summed
// duration of its direct children (floored at zero — concurrent children
// can overlap their parent).
func selfNS(spans []obs.SpanRecord) map[string]int64 {
	childNS := map[string]int64{}
	for _, sp := range spans {
		if sp.Parent != "" {
			childNS[sp.Trace+"/"+sp.Parent] += sp.DurNS
		}
	}
	self := map[string]int64{}
	for _, sp := range spans {
		s := sp.DurNS - childNS[sp.Trace+"/"+sp.Span]
		if s < 0 {
			s = 0
		}
		self[sp.Trace+"/"+sp.Span] = s
	}
	return self
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// printAggregate is the per-phase view: for every span name, how often it
// ran, its total wall time, and its self time (the per-phase critical
// path once child phases are subtracted).
func printAggregate(spans []obs.SpanRecord, top int) {
	self := selfNS(spans)
	type agg struct {
		name          string
		count         int
		totNS, slfNS  int64
		maxNS, maxSlf int64
	}
	byName := map[string]*agg{}
	for _, sp := range spans {
		a := byName[sp.Name]
		if a == nil {
			a = &agg{name: sp.Name}
			byName[sp.Name] = a
		}
		a.count++
		a.totNS += sp.DurNS
		s := self[sp.Trace+"/"+sp.Span]
		a.slfNS += s
		if sp.DurNS > a.maxNS {
			a.maxNS = sp.DurNS
		}
		if s > a.maxSlf {
			a.maxSlf = s
		}
	}
	list := make([]*agg, 0, len(byName))
	for _, a := range byName {
		list = append(list, a)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].slfNS != list[j].slfNS {
			return list[i].slfNS > list[j].slfNS
		}
		return list[i].name < list[j].name
	})
	fmt.Printf("%-24s %8s %12s %12s %12s\n", "span", "count", "total ms", "self ms", "max self ms")
	for i, a := range list {
		if i >= top {
			fmt.Printf("… %d more\n", len(list)-top)
			break
		}
		fmt.Printf("%-24s %8d %12.3f %12.3f %12.3f\n",
			a.name, a.count, ms(a.totNS), ms(a.slfNS), ms(a.maxSlf))
	}
}

// printSlowest lists traces by root-span duration, newest first on ties,
// and returns the slowest trace's ID for the drill-down.
func printSlowest(byTrace map[string][]obs.SpanRecord, top int) string {
	type row struct {
		trace, root string
		durNS       int64
		spans       int
	}
	var rows []row
	for id, spans := range byTrace {
		r := row{trace: id, spans: len(spans)}
		for _, sp := range spans {
			if sp.Parent == "" {
				r.root, r.durNS = sp.Name, sp.DurNS
			}
		}
		if r.root == "" { // root evicted from the ring: use the longest span
			for _, sp := range spans {
				if sp.DurNS > r.durNS {
					r.root, r.durNS = sp.Name+" (partial)", sp.DurNS
				}
			}
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].durNS != rows[j].durNS {
			return rows[i].durNS > rows[j].durNS
		}
		return rows[i].trace < rows[j].trace
	})
	fmt.Printf("\n%-18s %-24s %12s %8s\n", "trace", "root", "ms", "spans")
	for i, r := range rows {
		if i >= top {
			fmt.Printf("… %d more\n", len(rows)-top)
			break
		}
		fmt.Printf("%-18s %-24s %12.3f %8d\n", r.trace, r.root, ms(r.durNS), r.spans)
	}
	if len(rows) == 0 {
		return ""
	}
	return rows[0].trace
}

// printTree renders one trace as an indented span tree in start order.
func printTree(spans []obs.SpanRecord) {
	children := map[string][]obs.SpanRecord{}
	for _, sp := range spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	for p := range children {
		c := children[p]
		sort.Slice(c, func(i, j int) bool { return c[i].StartNS < c[j].StartNS })
	}
	var walk func(parent string, depth int)
	walk = func(parent string, depth int) {
		for _, sp := range children[parent] {
			attr := ""
			if sp.Attr != "" {
				attr = "  [" + sp.Attr + "]"
			}
			fmt.Printf("%s%-*s %10.3fms%s\n",
				strings.Repeat("  ", depth), 30-2*depth, sp.Name, ms(sp.DurNS), attr)
			walk(sp.Span, depth+1)
		}
	}
	// Roots first; spans whose parent was evicted from the ring hang off
	// whatever parents remain, so walk every parentless entry point.
	if len(children[""]) > 0 {
		walk("", 0)
		return
	}
	present := map[string]bool{}
	for _, sp := range spans {
		present[sp.Span] = true
	}
	for _, sp := range spans {
		if !present[sp.Parent] {
			attr := ""
			if sp.Attr != "" {
				attr = "  [" + sp.Attr + "]"
			}
			fmt.Printf("%-30s %10.3fms%s (orphan)\n", sp.Name, ms(sp.DurNS), attr)
			walk(sp.Span, 1)
		}
	}
}

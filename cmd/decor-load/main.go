// Command decor-load is a closed-loop load generator for decor-serve:
// -c workers each keep exactly one POST /v1/plan in flight against -url
// for -d, then the tool reports throughput, latency percentiles, status
// classes and cache behaviour, optionally as BENCH_serve.json.
//
// Closed-loop means offered load adapts to service speed — the tool
// measures sustainable throughput rather than piling up an open-loop
// backlog. -unique cycles that many distinct seeds so the run exercises
// the worker pool, not just the plan cache; -unique 1 measures the pure
// cache/singleflight path.
//
// Examples:
//
//	decor-load -url http://127.0.0.1:8080 -c 8 -d 10s
//	decor-load -url http://127.0.0.1:8080 -c 4 -d 5s -unique 4 \
//	    -json BENCH_serve.json -min-rps 500 -max-p99 200ms -max-errors 0
//
// With assertion flags set, a violated threshold exits non-zero — that
// is what `make serve-smoke` relies on.
//
// -sessions N switches to stateful field-session traffic (see
// sessions.go): N drivers across -tenants tenants each own one
// long-lived POST /v1/fields session and stream chaos-scheduled failure
// events in, delta plans out:
//
//	decor-load -url http://127.0.0.1:8080 -sessions 8 -tenants 3 \
//	    -method centralized -points 2000 -d 10s
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"decor/internal/obs"
)

func main() {
	os.Exit(run())
}

type config struct {
	url     string
	c       int
	dur     time.Duration
	unique  int
	field   float64
	k       int
	rs      float64
	points  int
	scatter int
	method  string
	timeout time.Duration

	sessions int
	tenants  int

	jsonPath  string
	minRPS    float64
	maxP99    time.Duration
	maxErrors int
}

// sample is one completed request.
type sample struct {
	latency time.Duration
	status  int
	cache   string // X-Decor-Cache header: miss|hit|coalesced|"" on errors
}

func run() int {
	var cfg config
	flag.StringVar(&cfg.url, "url", "http://127.0.0.1:8080", "decor-serve base URL")
	flag.IntVar(&cfg.c, "c", 8, "concurrent closed-loop workers (one request in flight each)")
	flag.DurationVar(&cfg.dur, "d", 10*time.Second, "measurement duration")
	flag.IntVar(&cfg.unique, "unique", 4, "distinct request seeds cycled across workers (1 = pure cache path)")
	flag.Float64Var(&cfg.field, "field", 100, "request field_side (figure-scale default)")
	flag.IntVar(&cfg.k, "k", 3, "request k")
	flag.Float64Var(&cfg.rs, "rs", 4, "request rs")
	flag.IntVar(&cfg.points, "points", 2000, "request num_points")
	flag.IntVar(&cfg.scatter, "scatter", 200, "request scatter count")
	flag.StringVar(&cfg.method, "method", "voronoi-big", "request method")
	flag.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request HTTP client timeout")
	flag.IntVar(&cfg.sessions, "sessions", 0, "drive this many stateful field sessions instead of /v1/plan (0 = plan mode)")
	flag.IntVar(&cfg.tenants, "tenants", 3, "tenants the -sessions drivers are spread across")
	flag.StringVar(&cfg.jsonPath, "json", "", "write the summary as JSON to this file (e.g. BENCH_serve.json)")
	flag.Float64Var(&cfg.minRPS, "min-rps", 0, "fail (exit 1) when throughput is below this many plans/s")
	flag.DurationVar(&cfg.maxP99, "max-p99", 0, "fail (exit 1) when p99 latency exceeds this")
	flag.IntVar(&cfg.maxErrors, "max-errors", -1, "fail (exit 1) when 5xx+transport errors exceed this (-1 disables)")
	flag.Parse()
	if cfg.c < 1 || cfg.unique < 1 || cfg.dur <= 0 {
		fmt.Fprintln(os.Stderr, "decor-load: -c and -unique must be >= 1, -d > 0")
		return 1
	}
	if cfg.sessions < 0 || (cfg.sessions > 0 && cfg.tenants < 1) {
		fmt.Fprintln(os.Stderr, "decor-load: -sessions must be >= 0, -tenants >= 1")
		return 1
	}

	var (
		sum *summary
		err error
	)
	if cfg.sessions > 0 {
		sum, err = measureSessions(cfg)
	} else {
		sum, err = measure(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "decor-load:", err)
		return 1
	}
	sum.print(os.Stdout)
	if cfg.jsonPath != "" {
		if err := sum.writeJSON(cfg.jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "decor-load:", err)
			return 1
		}
	}
	return sum.assert(cfg, os.Stderr)
}

// bodies precomputes the -unique request payloads; workers cycle through
// them so each distinct seed stays individually cacheable.
func bodies(cfg config) [][]byte {
	bs := make([][]byte, cfg.unique)
	for i := range bs {
		bs[i], _ = json.Marshal(map[string]any{
			"field_side": cfg.field,
			"k":          cfg.k,
			"rs":         cfg.rs,
			"num_points": cfg.points,
			"scatter":    cfg.scatter,
			"method":     cfg.method,
			"seed":       uint64(i + 1),
		})
	}
	return bs
}

// sampleCap sizes each worker's local sample buffer so steady-state
// appends never reallocate mid-run (reallocation pauses pollute latency
// tails): a closed-loop worker tops out around two requests per
// millisecond on the pure cache path.
func sampleCap(d time.Duration) int {
	c := int(d.Milliseconds()) * 2
	if c < 1024 {
		c = 1024
	}
	if c > 1<<18 {
		c = 1 << 18
	}
	return c
}

// drain empties a response body into the caller's reusable buffer.
// io.Copy(io.Discard, ...) hides its buffering; this keeps one buffer
// per worker for the whole run.
func drain(r io.Reader, buf []byte) {
	for {
		if _, err := r.Read(buf); err != nil {
			return
		}
	}
}

// scrapeMallocs reads the server's cumulative heap-allocation counter
// (decor_serve_go_mallocs_total) from /metrics. ok is false when the
// target does not expose the gauge (older server, metrics disabled);
// callers then skip the allocs_per_request derivation.
func scrapeMallocs(client *http.Client, base string) (float64, bool) {
	resp, err := client.Get(base + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return 0, false
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), obs.ServeHeapAllocs+" "); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

func measure(cfg config) (*summary, error) {
	client := &http.Client{Timeout: cfg.timeout}
	planURL := cfg.url + "/v1/plan"
	payloads := bodies(cfg)

	// One warm-up request validates the target before unleashing workers.
	if s := doOne(client, planURL, payloads[0], bytes.NewReader(nil), make([]byte, 32<<10)); s.status == 0 {
		return nil, fmt.Errorf("target %s unreachable", planURL)
	}

	var (
		mu      sync.Mutex
		samples []sample
		stop    atomic.Bool
		seq     atomic.Int64
		wg      sync.WaitGroup
	)
	mallocs0, haveMallocs := scrapeMallocs(client, cfg.url)
	start := time.Now()
	time.AfterFunc(cfg.dur, func() { stop.Store(true) })
	wg.Add(cfg.c)
	for w := 0; w < cfg.c; w++ {
		go func() {
			defer wg.Done()
			// Per-worker reusables: the sample buffer sized for the whole
			// run, one body reader, one read buffer.
			local := make([]sample, 0, sampleCap(cfg.dur))
			rd := bytes.NewReader(nil)
			buf := make([]byte, 32<<10)
			for !stop.Load() {
				body := payloads[int(seq.Add(1))%len(payloads)]
				local = append(local, doOne(client, planURL, body, rd, buf))
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if len(samples) == 0 {
		return nil, fmt.Errorf("no requests completed in %s", cfg.dur)
	}
	s := summarize(cfg, samples, elapsed)
	if mallocs1, ok := scrapeMallocs(client, cfg.url); ok && haveMallocs {
		s.AllocsPerReq = (mallocs1 - mallocs0) / float64(len(samples))
	}
	return s, nil
}

// doOne issues a single plan request, reusing the caller's body reader
// and read buffer; transport failures come back as status 0 and count
// as errors.
func doOne(client *http.Client, url string, body []byte, rd *bytes.Reader, buf []byte) sample {
	rd.Reset(body)
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", rd)
	if err != nil {
		return sample{latency: time.Since(t0)}
	}
	drain(resp.Body, buf)
	resp.Body.Close()
	return sample{
		latency: time.Since(t0),
		status:  resp.StatusCode,
		cache:   resp.Header.Get("X-Decor-Cache"),
	}
}

// summary is the run's aggregate, also the BENCH_serve.json schema.
// Session mode ("mode": "sessions") reuses the same shape: plans_per_sec
// then counts delta plans streamed per second, and the cache block stays
// zero (sessions never touch the plan cache).
type summary struct {
	Target      string  `json:"target"`
	Mode        string  `json:"mode,omitempty"`
	Sessions    int     `json:"sessions,omitempty"`
	Tenants     int     `json:"tenants,omitempty"`
	Method      string  `json:"method"`
	Concurrency int     `json:"concurrency"`
	Unique      int     `json:"unique_requests"`
	DurationS   float64 `json:"duration_s"`
	Requests    int     `json:"requests"`
	PlansPerSec float64 `json:"plans_per_sec"`
	Status      struct {
		OK2xx     int `json:"2xx"`
		Client4xx int `json:"4xx"`
		Server5xx int `json:"5xx"`
		Transport int `json:"transport_errors"`
	} `json:"status"`
	Cache struct {
		Hit       int `json:"hit"`
		Miss      int `json:"miss"`
		Coalesced int `json:"coalesced"`
	} `json:"cache"`
	LatencyMS struct {
		Mean float64 `json:"mean"`
		P50  float64 `json:"p50"`
		P90  float64 `json:"p90"`
		P99  float64 `json:"p99"`
		Max  float64 `json:"max"`
	} `json:"latency_ms"`
	// AllocsPerReq is the server-side heap-allocation cost of the run:
	// the delta of decor_serve_go_mallocs_total between two /metrics
	// scrapes divided by requests issued. It includes everything the
	// server did during the window (GC bookkeeping, other handlers), so
	// it is an upper bound on the request path itself. Zero when the
	// target does not expose the gauge.
	AllocsPerReq float64 `json:"allocs_per_request,omitempty"`
}

func summarize(cfg config, samples []sample, elapsed time.Duration) *summary {
	s := &summary{
		Target:      cfg.url,
		Method:      cfg.method,
		Concurrency: cfg.c,
		Unique:      cfg.unique,
		DurationS:   elapsed.Seconds(),
		Requests:    len(samples),
	}
	lats := make([]float64, len(samples))
	var total float64
	for i, sm := range samples {
		ms := float64(sm.latency) / float64(time.Millisecond)
		lats[i] = ms
		total += ms
		switch {
		case sm.status == 0:
			s.Status.Transport++
		case sm.status < 300:
			s.Status.OK2xx++
		case sm.status < 500:
			s.Status.Client4xx++
		default:
			s.Status.Server5xx++
		}
		switch sm.cache {
		case "hit":
			s.Cache.Hit++
		case "miss":
			s.Cache.Miss++
		case "coalesced":
			s.Cache.Coalesced++
		}
	}
	sort.Float64s(lats)
	pct := func(p float64) float64 {
		i := int(p / 100 * float64(len(lats)-1))
		return lats[i]
	}
	s.PlansPerSec = float64(s.Status.OK2xx) / elapsed.Seconds()
	s.LatencyMS.Mean = total / float64(len(lats))
	s.LatencyMS.P50 = pct(50)
	s.LatencyMS.P90 = pct(90)
	s.LatencyMS.P99 = pct(99)
	s.LatencyMS.Max = lats[len(lats)-1]
	return s
}

func (s *summary) print(w io.Writer) {
	if s.Mode == "sessions" {
		fmt.Fprintf(w, "decor-load: %d session events in %.2fs against %s (sessions=%d, tenants=%d, %s)\n",
			s.Requests, s.DurationS, s.Target, s.Sessions, s.Tenants, s.Method)
		fmt.Fprintf(w, "  throughput: %.1f deltas/s\n", s.PlansPerSec)
	} else {
		fmt.Fprintf(w, "decor-load: %d requests in %.2fs against %s (c=%d, unique=%d, %s)\n",
			s.Requests, s.DurationS, s.Target, s.Concurrency, s.Unique, s.Method)
		fmt.Fprintf(w, "  throughput: %.1f plans/s\n", s.PlansPerSec)
	}
	fmt.Fprintf(w, "  status:     %d 2xx, %d 4xx, %d 5xx, %d transport errors\n",
		s.Status.OK2xx, s.Status.Client4xx, s.Status.Server5xx, s.Status.Transport)
	fmt.Fprintf(w, "  cache:      %d hit, %d miss, %d coalesced\n",
		s.Cache.Hit, s.Cache.Miss, s.Cache.Coalesced)
	fmt.Fprintf(w, "  latency ms: mean %.2f, p50 %.2f, p90 %.2f, p99 %.2f, max %.2f\n",
		s.LatencyMS.Mean, s.LatencyMS.P50, s.LatencyMS.P90, s.LatencyMS.P99, s.LatencyMS.Max)
	if s.AllocsPerReq > 0 {
		fmt.Fprintf(w, "  allocs:     %.1f server-side allocs/request (from %s)\n",
			s.AllocsPerReq, obs.ServeHeapAllocs)
	}
}

func (s *summary) writeJSON(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// assert applies the threshold flags; each violation is reported and any
// violation makes the exit code 1.
func (s *summary) assert(cfg config, w io.Writer) int {
	code := 0
	if cfg.minRPS > 0 && s.PlansPerSec < cfg.minRPS {
		fmt.Fprintf(w, "decor-load: FAIL throughput %.1f plans/s < required %.1f\n", s.PlansPerSec, cfg.minRPS)
		code = 1
	}
	if cfg.maxP99 > 0 {
		if p99 := time.Duration(s.LatencyMS.P99 * float64(time.Millisecond)); p99 > cfg.maxP99 {
			fmt.Fprintf(w, "decor-load: FAIL p99 %s > allowed %s\n", p99.Round(time.Millisecond), cfg.maxP99)
			code = 1
		}
	}
	if errs := s.Status.Server5xx + s.Status.Transport; cfg.maxErrors >= 0 && errs > cfg.maxErrors {
		fmt.Fprintf(w, "decor-load: FAIL %d errors (5xx+transport) > allowed %d\n", errs, cfg.maxErrors)
		code = 1
	}
	return code
}

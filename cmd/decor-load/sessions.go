// Session-mode load generation: -sessions N switches decor-load from
// stateless /v1/plan traffic to stateful field-session traffic. Each of
// the N drivers owns one long-lived field session and streams failure
// events into it closed-loop — one POST /v1/fields/{id}/events in
// flight at a time, each answered by an incremental delta plan. The
// failure schedules come from chaos.TrafficFromPlan, so the offered
// fault distribution is the same seeded, bounded severity the chaos
// suite proves survivable. When a driver exhausts its schedule it drops
// the session and recreates it with a fresh seed, so a long run cycles
// through session lifetimes (create → stream → drop) rather than
// draining a fixed script.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"decor/internal/chaos"
	"decor/internal/session"
	"decor/internal/sim"
)

const tenantHeader = "X-Decor-Tenant"

// sessionDriver owns one field session for the duration of the run.
type sessionDriver struct {
	client *http.Client
	base   string
	tenant string
	id     string
	cfg    config
	buf    []byte // reusable response read buffer
}

func measureSessions(cfg config) (*summary, error) {
	client := &http.Client{Timeout: cfg.timeout}

	// Validate the target before unleashing drivers: create and drop a
	// probe session so an unreachable or mis-versioned server fails fast.
	probe := sessionDriver{client: client, base: cfg.url, tenant: "load-probe", id: "probe", cfg: cfg, buf: make([]byte, 32<<10)}
	if _, s := probe.create(0); s.status != http.StatusCreated {
		return nil, fmt.Errorf("target %s: probe session create got status %d", cfg.url, s.status)
	}
	probe.drop()

	var (
		mu      sync.Mutex
		samples []sample
		stop    atomic.Bool
		wg      sync.WaitGroup
	)
	mallocs0, haveMallocs := scrapeMallocs(client, cfg.url)
	start := time.Now()
	time.AfterFunc(cfg.dur, func() { stop.Store(true) })
	wg.Add(cfg.sessions)
	for i := 0; i < cfg.sessions; i++ {
		d := sessionDriver{
			client: client,
			base:   cfg.url,
			tenant: fmt.Sprintf("tenant-%d", i%cfg.tenants),
			id:     fmt.Sprintf("load-%d", i),
			cfg:    cfg,
			buf:    make([]byte, 32<<10),
		}
		go func(i int) {
			defer wg.Done()
			local := d.drive(uint64(i), &stop)
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if len(samples) == 0 {
		return nil, fmt.Errorf("no events completed in %s", cfg.dur)
	}
	s := summarize(cfg, samples, elapsed)
	s.Mode = "sessions"
	s.Sessions = cfg.sessions
	s.Tenants = cfg.tenants
	if mallocs1, ok := scrapeMallocs(client, cfg.url); ok && haveMallocs {
		s.AllocsPerReq = (mallocs1 - mallocs0) / float64(len(samples))
	}
	return s, nil
}

// drive cycles session generations until the stop flag flips: create a
// session, stream its whole chaos schedule one event per request, drop
// it, recreate with the next seed. Only event posts are recorded as
// samples — they are the deltas/s the summary reports; create/drop are
// lifecycle overhead and failures there surface as transport samples so
// they still fail -max-errors gates.
func (d sessionDriver) drive(seed uint64, stop *atomic.Bool) []sample {
	local := make([]sample, 0, sampleCap(d.cfg.dur))
	for gen := 0; !stop.Load(); gen++ {
		total, cs := d.create(seed + uint64(gen)*1000)
		if cs.status != http.StatusCreated {
			// Quota pressure (429) or drain (503): back off briefly and
			// retry; record the rejection so the report shows it.
			local = append(local, cs)
			time.Sleep(50 * time.Millisecond)
			continue
		}
		ids := make([]int, total)
		for i := range ids {
			ids[i] = i
		}
		schedule := chaos.TrafficFromPlan(sim.FaultPlan{Seed: seed + uint64(gen)*1000}, ids, 64)
		for _, ev := range schedule {
			if stop.Load() {
				break
			}
			body, _ := json.Marshal(map[string]any{"failed": ev.IDs})
			local = append(local, d.do("POST", "/events", body))
		}
		d.drop()
	}
	return local
}

// create provisions the driver's field session and returns the initial
// sensor population (scatter + placements) from the seq-0 delta.
func (d sessionDriver) create(seed uint64) (int, sample) {
	// A stale session from an earlier run (or an aborted generation)
	// would make the create 409; drop first, ignoring 404.
	d.drop()
	body, _ := json.Marshal(map[string]any{
		"field_id":   d.id,
		"field_side": d.cfg.field,
		"k":          d.cfg.k,
		"rs":         d.cfg.rs,
		"num_points": d.cfg.points,
		"scatter":    d.cfg.scatter,
		"method":     d.cfg.method,
		"seed":       seed,
	})
	t0 := time.Now()
	req, _ := http.NewRequest("POST", d.base+"/v1/fields", bytes.NewReader(body))
	req.Header.Set(tenantHeader, d.tenant)
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, sample{latency: time.Since(t0)}
	}
	defer resp.Body.Close()
	var delta session.Delta
	json.NewDecoder(resp.Body).Decode(&delta)
	drain(resp.Body, d.buf)
	return delta.TotalSensors, sample{latency: time.Since(t0), status: resp.StatusCode}
}

func (d sessionDriver) drop() {
	req, _ := http.NewRequest("DELETE", d.base+"/v1/fields/"+d.id, nil)
	req.Header.Set(tenantHeader, d.tenant)
	if resp, err := d.client.Do(req); err == nil {
		drain(resp.Body, d.buf)
		resp.Body.Close()
	}
}

// do issues one session-scoped request (path is relative to the
// session's /v1/fields/{id}) and records it as a sample.
func (d sessionDriver) do(method, path string, body []byte) sample {
	t0 := time.Now()
	req, err := http.NewRequest(method, d.base+"/v1/fields/"+d.id+path, bytes.NewReader(body))
	if err != nil {
		return sample{latency: time.Since(t0)}
	}
	req.Header.Set(tenantHeader, d.tenant)
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := d.client.Do(req)
	if err != nil {
		return sample{latency: time.Since(t0)}
	}
	drain(resp.Body, d.buf)
	resp.Body.Close()
	return sample{latency: time.Since(t0), status: resp.StatusCode}
}

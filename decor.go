// Package decor is the public API of the DECOR reproduction: dependable
// k-coverage restoration for wireless sensor networks using
// low-discrepancy field approximation and distributed greedy placement
// (Drougas & Kalogeraki, IPPS 2007).
//
// A Deployment owns a rectangular field approximated by a
// low-discrepancy point set and a set of sensors with sensing radius Rs
// and communication radius Rc. Sensors can be pre-placed (AddSensor),
// destroyed (FailRandom / FailArea), and the field restored to full
// k-coverage with any of the paper's algorithms (Deploy):
//
//	d, _ := decor.NewDeployment(decor.Params{
//		FieldSide: 100, K: 3, Rs: 4, NumPoints: 2000, Seed: 1,
//	})
//	d.ScatterRandom(200)                 // the paper's initial network
//	rep, _ := d.Deploy("voronoi-big")    // restore 3-coverage
//	fmt.Println(rep.Placed, d.Coverage(3))
//
// The internal packages expose the full substrate (geometry, Halton /
// Hammersley generators, discrete-event protocol simulation, experiment
// harness); this package is the stable surface downstream users need.
package decor

import (
	"context"
	"errors"
	"fmt"

	"decor/internal/core"
	"decor/internal/coverage"
	"decor/internal/experiment"
	"decor/internal/failure"
	"decor/internal/geom"
	"decor/internal/lowdisc"
	"decor/internal/network"
	"decor/internal/render"
	"decor/internal/rng"
)

// Point is a location in the field.
type Point struct {
	X, Y float64
}

// Sensor is one deployed device.
type Sensor struct {
	ID  int
	Pos Point
}

// Params configures a Deployment. The zero value is invalid; the paper's
// setup is FieldSide 100, K per experiment, Rs 4, Rc 8 or 14.14,
// NumPoints 2000, Generator "halton".
type Params struct {
	// FieldSide is the edge length of the square monitored area.
	FieldSide float64
	// K is the reliability requirement: every point must be covered by
	// at least K sensors.
	K int
	// Rs is the sensing radius; Rc the communication radius (defaults to
	// 2·Rs, the connectivity-preserving minimum from §2).
	Rs, Rc float64
	// NumPoints is the size of the low-discrepancy field approximation.
	NumPoints int
	// Generator selects the point set: halton (default), hammersley,
	// sobol, uniform, jittered, lhs.
	Generator string
	// Seed drives all randomness (random scatter, random placement,
	// failures). Equal seeds give identical behavior.
	Seed uint64
}

func (p Params) normalize() (Params, error) {
	if p.FieldSide <= 0 {
		return p, errors.New("decor: FieldSide must be positive")
	}
	if p.K < 1 {
		return p, errors.New("decor: K must be at least 1")
	}
	if p.Rs <= 0 {
		return p, errors.New("decor: Rs must be positive")
	}
	if p.Rc == 0 {
		p.Rc = 2 * p.Rs
	}
	if p.Rc < p.Rs {
		return p, errors.New("decor: Rc must be at least Rs (paper §2)")
	}
	if p.NumPoints < 1 {
		return p, errors.New("decor: NumPoints must be positive")
	}
	if p.Generator == "" {
		p.Generator = "halton"
	}
	return p, nil
}

// Deployment is a live field: sample points, sensors and coverage state.
//
// # Concurrency contract
//
// A Deployment is confined to a single goroutine: every method —
// including apparent reads like Coverage and Sensors — may touch shared
// mutable state (coverage counts, spatial indexes, the RNG stream)
// without synchronization. Callers that need concurrency take one of two
// shapes: give each goroutine its own Deployment built from its own
// Params (deployments built from equal Params behave identically), or
// build one and hand each goroutine a private Clone. The decor-serve
// request path does the latter for every request; see DESIGN.md §9.
type Deployment struct {
	params Params
	m      *coverage.Map
	r      *rng.RNG
}

// NewDeployment validates params and builds an empty field.
func NewDeployment(params Params) (*Deployment, error) {
	p, err := params.normalize()
	if err != nil {
		return nil, err
	}
	gen, err := lowdisc.ByName(p.Generator, p.Seed)
	if err != nil {
		return nil, fmt.Errorf("decor: %w", err)
	}
	field := geom.Square(p.FieldSide)
	pts := gen.Points(p.NumPoints, field)
	return &Deployment{
		params: p,
		m:      coverage.New(field, pts, p.Rs, p.K),
		r:      rng.New(p.Seed),
	}, nil
}

// Params returns the normalized parameters.
func (d *Deployment) Params() Params { return d.params }

// AddSensor places a sensor at pos and returns its ID.
func (d *Deployment) AddSensor(pos Point) int {
	id := nextID(d.m)
	d.m.AddSensor(id, geom.Point(pos))
	return id
}

// AddSensorID places a sensor with a caller-chosen ID — the entry point
// for reconstructing an existing deployment (the decor-serve /v1/repair
// path, where failed-sensor references must use the caller's IDs). It
// rejects negative and duplicate IDs.
func (d *Deployment) AddSensorID(id int, pos Point) error {
	if id < 0 {
		return fmt.Errorf("decor: sensor id %d must be non-negative", id)
	}
	if _, ok := d.m.SensorPos(id); ok {
		return fmt.Errorf("decor: duplicate sensor id %d", id)
	}
	d.m.AddSensor(id, geom.Point(pos))
	return nil
}

// FailSensors destroys exactly the identified sensors — the
// deterministic counterpart of FailRandom/FailArea for callers that know
// which devices died (a monitoring report, a /v1/repair request). It is
// atomic: if any ID is unknown, nothing is destroyed.
func (d *Deployment) FailSensors(ids ...int) error {
	for _, id := range ids {
		if _, ok := d.m.SensorPos(id); !ok {
			return fmt.Errorf("decor: unknown sensor id %d", id)
		}
	}
	failure.Apply(d.m, ids)
	return nil
}

// ScatterRandom uniformly scatters n sensors (the paper's initial
// network of "up to 200 sensor nodes") and returns their IDs.
func (d *Deployment) ScatterRandom(n int) []int {
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, d.AddSensor(Point(d.r.PointInRect(d.m.Field()))))
	}
	return ids
}

// Sensors lists all deployed sensors in ascending ID order.
func (d *Deployment) Sensors() []Sensor {
	ids := d.m.SensorIDs()
	out := make([]Sensor, len(ids))
	for i, id := range ids {
		p, _ := d.m.SensorPos(id)
		out[i] = Sensor{ID: id, Pos: Point(p)}
	}
	return out
}

// NumSensors returns the number of deployed sensors.
func (d *Deployment) NumSensors() int { return d.m.NumSensors() }

// Coverage returns the fraction (0..1) of sample points covered by at
// least level sensors; Coverage(params.K) is the headline metric.
func (d *Deployment) Coverage(level int) float64 { return d.m.CoverageFrac(level) }

// FullyCovered reports whether every sample point is K-covered.
func (d *Deployment) FullyCovered() bool { return d.m.FullyCovered() }

// Redundant returns the IDs of sensors removable without losing
// K-coverage (the paper's waste metric, Fig. 9).
func (d *Deployment) Redundant() []int { return d.m.RedundantSensors() }

// Report summarizes a Deploy run.
type Report struct {
	Method          string
	Placed          int     // sensors added by this run
	TotalSensors    int     // field total afterwards
	Messages        int     // protocol messages sent (distributed methods)
	MessagesPerCell float64 // the paper's Fig. 10 metric
	Rounds          int     // synchronized rounds executed
	Seeded          int     // base-station interventions for unreachable regions
	// Placements lists the new sensors' positions in placement order —
	// the route input for whoever (human or mobile robot, per the
	// paper's §1) actuates the deployment.
	Placements []Point
}

// Deploy restores full K-coverage using the named method: one of
// centralized, random, grid-small, grid-big, voronoi-small, voronoi-big
// (see MethodNames). Deploy on an already-covered field is a no-op.
func (d *Deployment) Deploy(method string) (Report, error) {
	return d.DeployContext(context.Background(), method)
}

// DeployContext is Deploy with cancellation: the placement loop polls ctx
// at its round (or per-placement) boundaries and stops early when the
// context is done, returning the context's error. Sensors placed before
// the interrupt remain on the field — callers that must not observe a
// partial restoration run against a throwaway Clone, as the decor-serve
// request path does. A run that completes is placement-for-placement
// identical to an uncancelled Deploy.
func (d *Deployment) DeployContext(ctx context.Context, method string) (Report, error) {
	meth, err := core.MethodByName(method, d.params.Rs)
	if err != nil {
		return Report{}, err
	}
	// Voronoi radii come from the paper's configuration; respect the
	// user's Rc for the small variant when it differs.
	if v, ok := meth.(core.VoronoiDECOR); ok && method == "voronoi-small" {
		v.Rc = d.params.Rc
		meth = v
	}
	res := meth.Deploy(d.m, d.r.Split(), core.Options{Ctx: ctx})
	placements := make([]Point, len(res.Placed))
	for i, pl := range res.Placed {
		placements[i] = Point(pl.Pos)
	}
	rep := Report{
		Method:          res.Method,
		Placed:          res.NumPlaced(),
		TotalSensors:    d.m.NumSensors(),
		Messages:        res.Messages,
		MessagesPerCell: res.MessagesPerCell(),
		Rounds:          res.Rounds,
		Seeded:          res.Seeded,
		Placements:      placements,
	}
	if res.Interrupted {
		return rep, ctx.Err()
	}
	return rep, nil
}

// Clone returns an independent copy of the deployment: private coverage
// counts, sensor set and RNG state, sharing only immutable structure (the
// sample points and their spatial index). Clone and original may then be
// used concurrently from different goroutines; the clone replays the
// original's random stream, so equal operation sequences on both yield
// identical results.
func (d *Deployment) Clone() *Deployment {
	return &Deployment{params: d.params, m: d.m.Clone(), r: d.r.Clone()}
}

// MethodNames lists the deployment algorithms accepted by Deploy.
func MethodNames() []string { return core.AllMethodNames() }

// FailRandom destroys a uniformly chosen fraction (0..1) of the deployed
// sensors and returns their IDs.
func (d *Deployment) FailRandom(fraction float64) []int {
	ids := (failure.Random{Fraction: fraction}).Select(d.m, d.r.Split())
	failure.Apply(d.m, ids)
	return ids
}

// FailArea destroys every sensor within radius of center (the paper's
// natural-disaster model) and returns their IDs.
func (d *Deployment) FailArea(center Point, radius float64) []int {
	ids := (failure.Area{Disk: geom.Disk{Center: geom.Point(center), R: radius}}).Select(d.m, nil)
	failure.Apply(d.m, ids)
	return ids
}

// Connectivity returns the vertex connectivity of the communication
// graph under Rc. With full K-coverage and Rc >= 2·Rs it is at least K
// (paper §2 corollary). This is exponential-ish in network size; intended
// for modest deployments.
func (d *Deployment) Connectivity() int {
	net := network.New(d.m.Field())
	for _, s := range d.Sensors() {
		net.Add(s.ID, geom.Point(s.Pos), d.params.Rs, d.params.Rc)
	}
	return net.VertexConnectivity()
}

// ASCII renders the field as a character grid (see internal/render).
func (d *Deployment) ASCII(width int) string { return render.ASCII(d.m, width) }

// SVG renders the field as an SVG document showing sample points and
// sensors.
func (d *Deployment) SVG() string {
	return render.SVG(d.m, render.SVGOptions{ShowPoints: true, ShowSensors: true})
}

// RunFigure regenerates one of the paper's data figures ("fig7".."fig14")
// and returns its text table. quick=true runs a reduced configuration
// (smaller field, 2 runs) suitable for smoke tests; quick=false uses the
// paper's full parameters.
func RunFigure(id string, quick bool) (string, error) {
	cfg := experiment.Default()
	if quick {
		cfg = experiment.Quick()
	}
	fig, err := experiment.ByID(id, cfg)
	if err != nil {
		return "", err
	}
	return fig.Table(), nil
}

func nextID(m *coverage.Map) int {
	ids := m.SensorIDs()
	if len(ids) == 0 {
		return 0
	}
	return ids[len(ids)-1] + 1
}

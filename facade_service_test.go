package decor

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// The tests in this file back the decor-serve service layer: the facade
// behaviours it relies on (unknown-method errors, validation boundaries,
// Clone independence, context cancellation) and the concurrency contract
// documented on Deployment, exercised under -race.

func TestDeployUnknownMethod(t *testing.T) {
	d, _ := NewDeployment(quickParams(1))
	if _, err := d.Deploy("no-such-method"); err == nil {
		t.Fatal("Deploy with an unknown method must fail")
	}
	if _, err := d.Deploy(""); err == nil {
		t.Fatal("Deploy with an empty method must fail")
	}
}

func TestParamsNormalizeBoundaries(t *testing.T) {
	base := Params{FieldSide: 50, K: 1, Rs: 4, NumPoints: 100}
	cases := []struct {
		name string
		mut  func(*Params)
		ok   bool
	}{
		{"zero field", func(p *Params) { p.FieldSide = 0 }, false},
		{"negative field", func(p *Params) { p.FieldSide = -10 }, false},
		{"k zero", func(p *Params) { p.K = 0 }, false},
		{"k negative", func(p *Params) { p.K = -3 }, false},
		{"rs zero", func(p *Params) { p.Rs = 0 }, false},
		{"rc below rs", func(p *Params) { p.Rc = 3.999 }, false},
		{"rc equals rs", func(p *Params) { p.Rc = 4 }, true}, // §2 lower bound is inclusive
		{"zero points", func(p *Params) { p.NumPoints = 0 }, false},
		{"one point", func(p *Params) { p.NumPoints = 1 }, true},
		{"k one", func(p *Params) { p.K = 1 }, true},
	}
	for _, tc := range cases {
		p := base
		tc.mut(&p)
		_, err := NewDeployment(p)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpectedly rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted %+v", tc.name, p)
		}
	}
}

func TestAddSensorIDAndFailSensors(t *testing.T) {
	d, _ := NewDeployment(quickParams(1))
	if err := d.AddSensorID(5, Point{X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddSensorID(5, Point{X: 2, Y: 2}); err == nil {
		t.Error("duplicate sensor id accepted")
	}
	if err := d.AddSensorID(-1, Point{}); err == nil {
		t.Error("negative sensor id accepted")
	}
	// FailSensors is atomic: one unknown reference destroys nothing.
	if err := d.FailSensors(5, 99); err == nil {
		t.Error("unknown sensor id accepted")
	}
	if d.NumSensors() != 1 {
		t.Errorf("failed FailSensors still destroyed sensors: %d left", d.NumSensors())
	}
	if err := d.FailSensors(5); err != nil {
		t.Fatal(err)
	}
	if d.NumSensors() != 0 {
		t.Errorf("FailSensors left %d sensors", d.NumSensors())
	}
}

func TestCloneIsIndependentAndEquivalent(t *testing.T) {
	d, _ := NewDeployment(quickParams(2))
	d.ScatterRandom(30)

	// Clone then run the same deterministic operation on both: results
	// must match (shared RNG state at clone time) and neither run may
	// leak into the other.
	c := d.Clone()
	rd, err := d.Deploy("grid-small")
	if err != nil {
		t.Fatal(err)
	}
	rc, err := c.Deploy("grid-small")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rd, rc) {
		t.Errorf("clone diverged from original:\n%+v\n%+v", rd, rc)
	}
	if d.NumSensors() != c.NumSensors() {
		t.Errorf("sensor counts diverged: %d vs %d", d.NumSensors(), c.NumSensors())
	}

	// Mutating the clone must not touch the original.
	before := d.NumSensors()
	c.ScatterRandom(10)
	if d.NumSensors() != before {
		t.Error("clone mutation leaked into the original")
	}
}

// TestConcurrentPlansAreIndependent is the -race regression test for the
// documented concurrency contract: N goroutines each take a private
// Clone of one shared template and Deploy concurrently. Any hidden
// shared mutable state shows up under the race detector, and all runs
// must agree placement-for-placement.
func TestConcurrentPlansAreIndependent(t *testing.T) {
	tmpl, _ := NewDeployment(quickParams(2))
	tmpl.ScatterRandom(40)

	const n = 8
	reps := make([]Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		d := tmpl.Clone() // cloned before the goroutine starts: tmpl stays confined
		go func(i int, d *Deployment) {
			defer wg.Done()
			reps[i], errs[i] = d.Deploy("voronoi-big")
		}(i, d)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(reps[i], reps[0]) {
			t.Errorf("goroutine %d diverged from goroutine 0", i)
		}
	}
	if reps[0].Placed == 0 {
		t.Error("test is vacuous: nothing was placed")
	}
}

func TestDeployContextCancellation(t *testing.T) {
	// An already-cancelled context stops the run before (or mid) placement
	// and surfaces the context error.
	d, _ := NewDeployment(quickParams(3))
	d.ScatterRandom(10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := d.DeployContext(ctx, "centralized")
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Placed != 0 {
		t.Errorf("cancelled-before-start run placed %d sensors", rep.Placed)
	}

	// A context that never fires leaves the run identical to plain Deploy.
	a, _ := NewDeployment(quickParams(2))
	a.ScatterRandom(20)
	b := a.Clone()
	ra, err := a.DeployContext(context.Background(), "grid-big")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Deploy("grid-big")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Error("DeployContext(Background) differs from Deploy")
	}
}

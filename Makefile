# DECOR reproduction — convenience targets.

GO ?= go

.PHONY: all build vet test test-short check bench figures extensions summary clean

all: build vet test

# The CI gate: static analysis plus the full suite under the race
# detector (the obs registry and engine instrumentation are concurrent).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One benchmark per paper figure plus the ablations.
bench:
	$(GO) test -bench . -benchmem ./...

# Regenerate the paper's evaluation tables (full parameters, ~15 s).
figures:
	$(GO) run ./cmd/decor-bench -fig all

# The extension experiments (ablations + validations, ~10 s).
extensions:
	$(GO) run ./cmd/decor-bench -fig ext

# Paper-vs-measured claim check.
summary:
	$(GO) run ./cmd/decor-bench -fig summary

# The illustration figures as SVG.
figs4to6:
	$(GO) run ./cmd/decor-field -what points  -o fig4.svg
	$(GO) run ./cmd/decor-field -what deploy  -o fig5.svg
	$(GO) run ./cmd/decor-field -what failure -o fig6.svg

clean:
	rm -f fig4.svg fig5.svg fig6.svg test_output.txt bench_output.txt

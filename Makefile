# DECOR reproduction — convenience targets.

GO ?= go

.PHONY: all build vet test test-short check bench bench-json bench-large serve-smoke chaos-smoke session-smoke snapshot-smoke cover figures extensions summary clean

all: build vet test

# The CI gate: static analysis, the full suite under the race detector
# (the obs registry, tracer, flight recorder, engine instrumentation,
# and the shard worker pool are concurrent), a one-iteration bench smoke
# so the benchmarks never rot, the engine benchmark diff against the
# committed BENCH_sim.json baseline — which now GATES the tracing
# overhead: the recorder-disabled BenchmarkEngineRun/actors=64 hot path
# must stay within BENCH_GATE_PCT (default 25%) of the baseline, the
# core placement benches are likewise diffed and gated against
# BENCH_core.json, and the recorder-enabled/disabled ratio is reported
# (scripts/benchstat.sh) — the large-placement race smoke (bench-large),
# the decor-serve end-to-end smoke (throughput + graceful drain), the
# chaos sweep (invariants + determinism under fault injection), and the
# field-session soak (byte-identical delta streams across two seeded
# multi-tenant runs; see session-smoke).
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...
	sh scripts/benchstat.sh
	$(MAKE) bench-large
	$(MAKE) serve-smoke
	$(MAKE) chaos-smoke
	$(MAKE) snapshot-smoke
	$(MAKE) session-smoke

# Large-placement smoke: a downscaled (1e5-point) million-point-regime
# deployment under the race detector, asserting the tile-parallel
# conflict-resolution path places byte-identically to the sequential
# tiled path and honors a resident-tile budget. Bounded wall-clock via
# -timeout; the full 1e6 benchmarks stay behind DECOR_PLACE_LARGE=1 in
# `make bench-json`.
bench-large:
	DECOR_BENCH_LARGE=1 $(GO) test -race -run '^TestPlaceLargeSmoke$$' -timeout 600s ./internal/core/

# Chaos property gate: sweep 16 seeds per architecture under the race
# detector, each run repeated to verify a byte-identical replay. The
# sweep shards seeds across GOMAXPROCS workers (per-shard engines,
# deterministic merge — output is byte-identical to -parallel 1). Any
# invariant violation, non-convergence, or replay divergence exits
# non-zero. Replay an individual failure with the seed it prints, e.g.
# `go run ./cmd/decor-chaos -arch grid -seed 7`.
chaos-smoke:
	$(GO) run -race ./cmd/decor-chaos -arch all -seeds 16

# Snapshot/differential gate: the checkpoint parity suite (snapshot ->
# restore -> run-to-end must be byte-equal to the straight run for every
# architecture at randomized cut points, second-generation resumes
# included), the typed-rejection corruption matrix, and the snapshot
# fuzz seed corpus, all under the race detector (DESIGN.md §15).
snapshot-smoke:
	$(GO) test -race -run '^TestCheckpointedRunMatchesStraightRun$$|^TestResumeParity$$|^TestResumeEmitsFurtherCheckpoints$$|^TestResumeRejectsCorruption$$|^FuzzSnapshotRoundTrip$$' -count=1 -timeout 300s ./internal/chaos/

# Field-session soak: a seeded multi-tenant event storm (concurrent
# NDJSON streams, mid-stream evict/restore) run twice under the race
# detector, asserting the two runs produce byte-identical delta streams
# — the session subsystem's determinism contract end to end (DESIGN.md
# §14). Quota isolation, the fast-restore differential (binary restore
# byte-equal to replay restore), and cross-manager migration parity
# (Export/Import mid-stream, DESIGN.md §15) are asserted in the same
# package run.
session-smoke:
	$(GO) test -race -run '^TestSessionSoak$$|^TestSoakQuotaIsolation$$|^TestFastRestoreMatchesReplay$$|^TestSessionMigrationDeltaParity$$' -count=1 -timeout 300s ./internal/session/

# Coverage gate: combined statement coverage of internal/sim and
# internal/protocol must stay at or above the post-chaos-PR baseline
# (scripts/cover.sh, default floor 95%).
cover:
	sh scripts/cover.sh

# End-to-end service gate: boot decor-serve on GOMAXPROCS=4, drive a
# decor-load burst (>= 500 plans/s, bounded p99, zero 5xx), refresh
# BENCH_serve.json, and assert SIGTERM drains cleanly. Tunable via
# SMOKE_DURATION / SMOKE_MIN_RPS / SMOKE_MAX_P99 / SMOKE_JSON.
serve-smoke:
	sh scripts/serve-smoke.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One benchmark per paper figure plus the ablations.
bench:
	$(GO) test -bench . -benchmem ./...

# Refresh the committed benchmark baselines: BENCH_core.json (placement
# hot path: micro-benches plus the large-field BenchmarkPlace
# deployments, with DECOR_PLACE_LARGE=1 so the 1e6-point entries are
# included) and BENCH_sim.json (simulator engine + chaos scenario
# benches, real iteration counts so ns/op and allocs/op are meaningful
# for scripts/benchstat.sh comparisons).
bench-json:
	DECOR_PLACE_LARGE=1 $(GO) test -run '^$$' -bench 'BenchmarkBenefitRadius|BenchmarkIndexBall|BenchmarkDeployAblation|BenchmarkPlace' -benchtime=1x -count=3 -timeout 60m ./internal/... | $(GO) run ./cmd/decor-benchjson -o BENCH_core.json
	$(GO) test -run '^$$' -bench 'BenchmarkEngineRun|BenchmarkEngineSchedule|BenchmarkChaosScenario' -benchmem -benchtime=50x -count=3 ./internal/sim/ ./internal/chaos/ | $(GO) run ./cmd/decor-benchjson -o BENCH_sim.json
	$(GO) test -run '^$$' -bench 'BenchmarkSessionDelta|BenchmarkStatelessRepair' -benchmem -benchtime=1x -count=3 -timeout 30m ./internal/session/ | $(GO) run ./cmd/decor-benchjson -o BENCH_session.json
	$(GO) test -run '^$$' -bench 'BenchmarkServePlanCacheHit|BenchmarkServePlanCacheMiss|BenchmarkServeFieldEvent|BenchmarkServeSSEFrame|BenchmarkServeErrorBody|BenchmarkDeltaEncode' -benchmem -benchtime=50x -count=3 ./internal/service/ ./internal/session/ | $(GO) run ./cmd/decor-benchjson -o BENCH_serve_allocs.json

# Regenerate the paper's evaluation tables (full parameters, ~4 s).
figures:
	$(GO) run ./cmd/decor-bench -fig all

# The extension experiments (ablations + validations, ~10 s).
extensions:
	$(GO) run ./cmd/decor-bench -fig ext

# Paper-vs-measured claim check.
summary:
	$(GO) run ./cmd/decor-bench -fig summary

# The illustration figures as SVG.
figs4to6:
	$(GO) run ./cmd/decor-field -what points  -o fig4.svg
	$(GO) run ./cmd/decor-field -what deploy  -o fig5.svg
	$(GO) run ./cmd/decor-field -what failure -o fig6.svg

clean:
	rm -f fig4.svg fig5.svg fig6.svg test_output.txt bench_output.txt

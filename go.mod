module decor

go 1.22

package decor_test

import (
	"fmt"

	"decor"
)

// The end-to-end loop from the paper: scatter an initial network,
// restore k-coverage with distributed DECOR, survive a disaster, repair.
func Example() {
	d, err := decor.NewDeployment(decor.Params{
		FieldSide: 50, K: 2, Rs: 4, NumPoints: 500, Seed: 11,
	})
	if err != nil {
		panic(err)
	}
	d.ScatterRandom(40)
	rep, err := d.Deploy("voronoi-big")
	if err != nil {
		panic(err)
	}
	fmt.Println("fully covered:", d.FullyCovered(), "placed > 0:", rep.Placed > 0)

	d.FailArea(decor.Point{X: 25, Y: 25}, 12)
	fmt.Println("after disaster still covered:", d.FullyCovered())
	if _, err := d.Deploy("voronoi-big"); err != nil {
		panic(err)
	}
	fmt.Println("restored:", d.FullyCovered())
	// Output:
	// fully covered: true placed > 0: true
	// after disaster still covered: false
	// restored: true
}

// Choosing k from a reliability requirement (the paper's abstract).
func ExampleKForReliability() {
	k, err := decor.KForReliability(0.5, 0.9)
	if err != nil {
		panic(err)
	}
	fmt.Println("k =", k) // 1-0.5^4 = 0.9375 >= 0.9
	// Output:
	// k = 4
}

// Sleep scheduling: k-coverage buys disjoint covering shifts.
func ExampleDeployment_SleepSchedule() {
	d, err := decor.NewDeployment(decor.Params{
		FieldSide: 50, K: 5, Rs: 4, NumPoints: 500, Seed: 11,
	})
	if err != nil {
		panic(err)
	}
	d.ScatterRandom(40)
	if _, err := d.Deploy("centralized"); err != nil {
		panic(err)
	}
	shifts := d.SleepSchedule()
	fmt.Println("at least 2 shifts:", len(shifts) >= 2)
	// Output:
	// at least 2 shifts: true
}

package decor

import (
	"errors"
	"io"

	"decor/internal/energy"
	"decor/internal/geom"
	"decor/internal/network"
	"decor/internal/percover"
	"decor/internal/relay"
	"decor/internal/reliability"
	"decor/internal/render"
	"decor/internal/rng"
	"decor/internal/schedule"
)

// This file extends the public facade beyond the paper's core loop:
// exact coverage verification (via the perimeter method of the paper's
// reference [8]), the reliability calculus from the abstract/§2.1, and
// raster rendering.

// KForReliability translates a user reliability requirement into the
// coverage degree k (the paper's abstract: "k is calculated based on
// user reliability requirements"): the smallest k such that a point
// covered by k sensors, each failing independently with probability q,
// stays covered with probability at least target.
func KForReliability(q, target float64) (int, error) {
	return reliability.KForTarget(q, target)
}

// VerifyExact decides k-coverage analytically — independent of the
// sample-point approximation — using perimeter coverage. When the field
// is not fully K-covered it returns a concrete under-covered witness
// point. This is the ground-truth check for the discrepancy-point
// method.
func (d *Deployment) VerifyExact() (covered bool, witness Point) {
	res := percover.Verify(d.m, d.params.K)
	return res.Covered, Point(res.Witness)
}

// ReliabilityReport summarizes a deployment's failure resilience under
// i.i.d. sensor failures with probability Q (paper §2.1).
type ReliabilityReport struct {
	Q float64
	// MinPointReliability is the survival probability of the worst
	// sample point (1 − q^{k_p} with the smallest k_p).
	MinPointReliability float64
	// ExpectedCovered is the expected fraction of points still covered
	// by at least one sensor after failures.
	ExpectedCovered float64
	// ExpectedKCovered is the expected fraction still at the full
	// requirement K.
	ExpectedKCovered float64
}

// Reliability computes the exact (closed-form, no sampling) reliability
// report for the current deployment.
func (d *Deployment) Reliability(q float64) ReliabilityReport {
	rep := reliability.Analyze(d.m, q)
	return ReliabilityReport{
		Q:                   q,
		MinPointReliability: rep.PointReliability.Min,
		ExpectedCovered:     rep.ExpectedCovered,
		ExpectedKCovered:    rep.ExpectedKCovered,
	}
}

// SleepSchedule extracts disjoint 1-covering sensor shifts from the
// current deployment (the paper's §1 energy story): rotating the shifts
// keeps the field monitored while all other sensors sleep. Each shift is
// a sorted slice of sensor IDs; more coverage degree yields more shifts.
func (d *Deployment) SleepSchedule() [][]int {
	plan := schedule.Build(d.m)
	out := make([][]int, len(plan.Covers))
	for i, c := range plan.Covers {
		out[i] = append([]int(nil), c...)
	}
	return out
}

// EstimateLifetime returns the monitored lifetime, in rotation epochs of
// epochSec seconds, that the sleep schedule achieves with batteryJoules
// per node under the default first-order radio model.
func (d *Deployment) EstimateLifetime(epochSec, batteryJoules float64) int {
	plan := schedule.Build(d.m)
	return schedule.Lifetime(plan, energy.Default(), batteryJoules, epochSec, d.params.Rc, 2)
}

// SetK retunes the coverage requirement of a live deployment — the
// paper's §3: "the value of the parameter k can be tuned dynamically to
// achieve the desired level of coverage required by the user". Raising
// K exposes deficits (restore with Deploy); lowering it frees surplus
// sensors (harvest with Redundant or SleepSchedule). K must be >= 1.
func (d *Deployment) SetK(k int) error {
	if k < 1 {
		return errInvalidK
	}
	d.params.K = k
	d.m.SetK(k)
	return nil
}

var errInvalidK = errors.New("decor: K must be at least 1")

// ConnectRelays checks communication connectivity under the
// deployment's Rc and, if the network is partitioned (possible whenever
// Rc < 2·Rs — outside the §2 corollary), adds relay sensors along the
// gaps until it is connected. It returns the relay positions added (nil
// when already connected). Relays participate in coverage like any
// other sensor.
func (d *Deployment) ConnectRelays() []Point {
	net := network.New(d.m.Field())
	for _, s := range d.Sensors() {
		net.Add(s.ID, geom.Point(s.Pos), d.params.Rs, d.params.Rc)
	}
	res := relay.Connect(net, d.params.Rs, d.params.Rc, nextID(d.m))
	out := make([]Point, 0, len(res.Relays))
	for _, p := range res.Relays {
		d.m.AddSensor(nextID(d.m), p)
		out = append(out, Point(p))
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Reseed replaces the deployment's random stream. Deployments built from
// equal Params replay identically; reseeding clones lets callers draw
// independent failure scenarios over the same deployed field.
func (d *Deployment) Reseed(seed uint64) { d.r = rng.New(seed) }

// WritePNG renders the field as a PNG coverage heatmap with sensors.
func (d *Deployment) WritePNG(w io.Writer) error {
	return render.PNG(w, d.m, render.PNGOptions{
		Heatmap:     true,
		ShowSensors: true,
	})
}

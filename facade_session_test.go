package decor

import (
	"context"
	"reflect"
	"sort"
	"testing"
)

// The session subsystem (internal/session, DESIGN.md §14) keeps one
// long-lived Deployment per field and repairs it incrementally:
// DeployContext → FailSensors → DeployContext → ... for the session's
// whole lifetime. Its snapshot/restore determinism rests on a facade
// property this file pins down: an incrementally-repaired deployment is
// indistinguishable, at every step, from a fresh deployment that
// replays the same operation sequence from scratch. If any method kept
// hidden state across Deploy calls that a rebuild would not reproduce,
// session restore would silently diverge from the live session it
// replaced.

// liveIDs returns the deployment's sensor IDs, sorted.
func liveIDs(d *Deployment) []int {
	sensors := d.Sensors()
	ids := make([]int, len(sensors))
	for i, s := range sensors {
		ids[i] = s.ID
	}
	sort.Ints(ids)
	return ids
}

// victims picks a deterministic, spread-out triple of live sensors so
// every parity step kills the same IDs in the incremental run and in
// each replay.
func victims(ids []int, round int) []int {
	n := len(ids)
	return []int{ids[(round*7)%n], ids[n/2], ids[n-1-round%3]}
}

func dedup(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

func TestIncrementalRepairMatchesFullReplay(t *testing.T) {
	const (
		scatter = 40
		rounds  = 4
	)
	for _, method := range []string{"grid-small", "voronoi-small", "centralized"} {
		t.Run(method, func(t *testing.T) {
			ctx := context.Background()

			// The long-lived deployment, repaired incrementally.
			live, err := NewDeployment(quickParams(1))
			if err != nil {
				t.Fatal(err)
			}
			live.ScatterRandom(scatter)
			if _, err := live.DeployContext(ctx, method); err != nil {
				t.Fatal(err)
			}

			// The op log the session's restore path would replay.
			var failLog [][]int
			totalPlaced := 0

			for round := 0; round < rounds; round++ {
				vs := dedup(victims(liveIDs(live), round))
				if err := live.FailSensors(vs...); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				rep, err := live.DeployContext(ctx, method)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				failLog = append(failLog, vs)

				// Fresh full replay of the whole history up to here.
				replay, err := NewDeployment(quickParams(1))
				if err != nil {
					t.Fatal(err)
				}
				replay.ScatterRandom(scatter)
				if _, err := replay.DeployContext(ctx, method); err != nil {
					t.Fatal(err)
				}
				var lastRep Report
				for i, vs := range failLog {
					if err := replay.FailSensors(vs...); err != nil {
						t.Fatalf("replay round %d: %v", i, err)
					}
					if lastRep, err = replay.DeployContext(ctx, method); err != nil {
						t.Fatalf("replay round %d: %v", i, err)
					}
				}

				// Differential parity: the repair report and the full
				// sensor population (IDs and positions) must match.
				if !reflect.DeepEqual(rep, lastRep) {
					t.Fatalf("round %d: incremental report %+v != replay report %+v", round, rep, lastRep)
				}
				liveSensors, replaySensors := live.Sensors(), replay.Sensors()
				sort.Slice(liveSensors, func(i, j int) bool { return liveSensors[i].ID < liveSensors[j].ID })
				sort.Slice(replaySensors, func(i, j int) bool { return replaySensors[i].ID < replaySensors[j].ID })
				if !reflect.DeepEqual(liveSensors, replaySensors) {
					t.Fatalf("round %d: sensor populations diverged (%d vs %d sensors)",
						round, len(liveSensors), len(replaySensors))
				}
				if !live.FullyCovered() {
					t.Fatalf("round %d: repair left the field uncovered", round)
				}
				totalPlaced += rep.Placed
			}
			// A round may legitimately place nothing (the victims were
			// redundant), but a whole run that never places anything
			// proves nothing about the repair path.
			if totalPlaced == 0 {
				t.Fatal("vacuous: no round placed any repair sensors")
			}
		})
	}
}

package decor

import (
	"bytes"
	"testing"
)

func TestKForReliability(t *testing.T) {
	k, err := KForReliability(0.5, 0.9)
	if err != nil || k != 4 {
		t.Errorf("KForReliability = %d, %v", k, err)
	}
	if _, err := KForReliability(1, 0.9); err == nil {
		t.Error("q=1 should error")
	}
}

func TestVerifyExact(t *testing.T) {
	d, _ := NewDeployment(quickParams(1))
	if ok, w := d.VerifyExact(); ok {
		t.Errorf("empty field verified covered (witness %v)", w)
	}
	if _, err := d.Deploy("centralized"); err != nil {
		t.Fatal(err)
	}
	ok, w := d.VerifyExact()
	if !ok {
		// The point approximation can leave analytic slivers; the
		// witness must then be genuinely near-uncovered, i.e. outside
		// every sensor's disk minus epsilon. Just require the witness to
		// be a valid field point.
		if w.X < 0 || w.X > 50 || w.Y < 0 || w.Y > 50 {
			t.Errorf("witness %v outside field", w)
		}
	}
}

func TestReliabilityReport(t *testing.T) {
	d, _ := NewDeployment(quickParams(3))
	d.ScatterRandom(30)
	if _, err := d.Deploy("centralized"); err != nil {
		t.Fatal(err)
	}
	rep := d.Reliability(0.2)
	if rep.Q != 0.2 {
		t.Errorf("Q = %v", rep.Q)
	}
	// Full 3-coverage: worst point survives with >= 1-0.2^3 = 0.992.
	if rep.MinPointReliability < 0.992-1e-9 {
		t.Errorf("MinPointReliability = %v", rep.MinPointReliability)
	}
	if rep.ExpectedCovered < rep.ExpectedKCovered {
		t.Error("1-coverage expectation below k-coverage expectation")
	}
	if rep.ExpectedCovered > 1 || rep.ExpectedKCovered <= 0 {
		t.Errorf("expectations out of range: %+v", rep)
	}
}

func TestConnectRelays(t *testing.T) {
	// Rc = Rs = 4: coverage does not imply connectivity.
	p := quickParams(1)
	p.Rc = 4
	d, err := NewDeployment(p)
	if err != nil {
		t.Fatal(err)
	}
	// Two separated clusters.
	d.AddSensor(Point{X: 5, Y: 5})
	d.AddSensor(Point{X: 7, Y: 5})
	d.AddSensor(Point{X: 40, Y: 45})
	d.AddSensor(Point{X: 42, Y: 45})
	before := d.NumSensors()
	relays := d.ConnectRelays()
	if len(relays) == 0 {
		t.Fatal("separated clusters need relays")
	}
	if d.NumSensors() != before+len(relays) {
		t.Error("relays not added as sensors")
	}
	if d.Connectivity() < 1 {
		t.Error("network still partitioned after ConnectRelays")
	}
	// Idempotent: a connected network needs nothing.
	if again := d.ConnectRelays(); again != nil {
		t.Errorf("second ConnectRelays added %d relays", len(again))
	}
}

func TestWritePNG(t *testing.T) {
	d, _ := NewDeployment(quickParams(1))
	d.ScatterRandom(20)
	var buf bytes.Buffer
	if err := d.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 100 || !bytes.HasPrefix(buf.Bytes(), []byte("\x89PNG")) {
		t.Errorf("PNG output malformed (%d bytes)", buf.Len())
	}
}

func TestSetKDynamicRetuning(t *testing.T) {
	d, _ := NewDeployment(quickParams(1))
	d.ScatterRandom(30)
	if _, err := d.Deploy("centralized"); err != nil {
		t.Fatal(err)
	}
	sensorsAt1 := d.NumSensors()
	// User tightens the reliability requirement at runtime.
	if err := d.SetK(3); err != nil {
		t.Fatal(err)
	}
	if d.FullyCovered() {
		t.Fatal("raising K should expose deficits")
	}
	if _, err := d.Deploy("voronoi-small"); err != nil {
		t.Fatal(err)
	}
	if !d.FullyCovered() || d.Coverage(3) != 1 {
		t.Fatal("densification failed")
	}
	if d.NumSensors() <= sensorsAt1 {
		t.Error("3-coverage should need more sensors than 1-coverage")
	}
	// Relaxing back frees sensors.
	if err := d.SetK(1); err != nil {
		t.Fatal(err)
	}
	if !d.FullyCovered() {
		t.Error("relaxing K cannot create deficits")
	}
	if len(d.Redundant()) == 0 {
		t.Error("relaxed field should have redundant sensors")
	}
	if err := d.SetK(0); err == nil {
		t.Error("SetK(0) should error")
	}
}
